// Package netsim wires complete simulated hosts — CPU, TurboChannel bus,
// VM system, protection domains, fbuf facility, protocol stack, and Osiris
// adapter — and runs the paper's end-to-end experiments: two DecStations
// connected by a null modem, a sliding-window test protocol over UDP/IP,
// and the three protection-domain placements of Figures 5 and 6
// (kernel–kernel, user–user, user–netserver–user).
//
// The simulation is event-driven. Each host's protocol work is metered in
// simulated time and occupies its CPU resource; each PDU's cell DMA
// occupies the sending bus, serializes onto the link, and occupies the
// receiving bus in pipelined fashion; receive interrupts are scheduled at
// DMA completion. Throughput and per-host CPU utilization fall out of the
// resource timelines.
package netsim

import (
	"fmt"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/osiris"
	"fbufs/internal/protocols"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xkernel"
)

// Placement selects how the protocol stack is distributed over protection
// domains, matching the configurations of Figures 5 and 6.
type Placement int

// Placements.
const (
	// KernelKernel: the entire stack, test protocol included, in the
	// kernel — the baseline with no domain crossings.
	KernelKernel Placement = iota
	// UserUser: the test protocol in a user domain; one kernel/user
	// crossing per host.
	UserUser
	// UserNetserverUser: UDP/IP in a user-level network server; both a
	// user/user and a kernel/user crossing per host.
	UserNetserverUser
)

func (p Placement) String() string {
	switch p {
	case KernelKernel:
		return "kernel-kernel"
	case UserUser:
		return "user-user"
	case UserNetserverUser:
		return "user-netserver-user"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Config parameterizes an end-to-end run.
type Config struct {
	Placement Placement
	// Opts selects the fbuf optimization level throughout both hosts.
	Opts core.Options
	// PDUBytes is IP's fragmentation size (16 KB in Figure 5/6; 32 KB in
	// the paper's PDU-size ablation).
	PDUBytes int
	// MsgBytes is the test-protocol message size.
	MsgBytes int
	// Count is the number of messages to send (>= 2; steady-state
	// throughput is measured between the first and last delivery).
	Count int
	// Window is the sliding-window depth (outstanding messages).
	Window int
	// NoTextPenalty disables the duplicated-library-text surcharge that
	// normally applies in the three-domain placement (shared-libraries
	// ablation; see paper section 4).
	NoTextPenalty bool
	// ZeroContention removes the CPU/memory-contention stall from the
	// bus model, raising the I/O ceiling from 285 to the DMA-startup
	// bound of 367 Mb/s (hardware ablation; see paper section 4).
	ZeroContention bool
	// Verify makes the sender write the deterministic test pattern into
	// every message and the sink check each delivered payload against it
	// (integrity under fault injection; costs the CPU data touching).
	Verify bool
	// UseSWP replaces the harness's implicit acknowledgement scheme with
	// the real sliding-window protocol layer (protocols.SWP) between the
	// test protocol and UDP: sequence numbers, cumulative acks, and
	// timer-driven retransmission.
	UseSWP bool
	// DropEvery, when positive, makes the link corrupt (drop) every Nth
	// transmitted PDU. Requires UseSWP for reliable delivery.
	DropEvery int
	// Frames sizes each host's physical memory (0: 32768 frames=128MB).
	Frames int
	// Faults, when non-nil, is shared by both hosts (each host's
	// vm.System.FaultPlane) and drives per-link loss/corruption/
	// duplication/reordering/partitions in transmit: host A's outgoing
	// link is LinkAB, host B's is LinkBA. Requires UseSWP for reliable
	// delivery when link faults are configured.
	Faults *faults.Plane
	// Obs, when non-nil, is attached to both hosts: host A keeps trace
	// base 0, host B gets base 100, so one Perfetto trace shows both
	// machines' domains as distinct processes (prefixed "A."/"B.").
	Obs *obs.Observer
	// UseRings routes every cross-domain call between the stack's layers
	// through shared-memory submission/completion rings (internal/rings):
	// only doorbells on empty→non-empty transitions are charged as
	// control transfers, descriptors cross unmarshalled, and deallocation
	// notices coalesce into one completion entry per drain. Off by
	// default, leaving the legacy per-transfer IPC path byte-identical.
	UseRings bool
	// AdmissionBudget, when positive, installs a per-tenant admission
	// controller on each host with that many chunks of budget: the app
	// data path joins an "app" class (weight 3) and the protocol header
	// paths a "proto" class (weight 1). When the app class overruns its
	// share, allocations fail with core.ErrAdmission and — with UseSWP —
	// the sender's effective window halves via SWP.Backpressure until the
	// pressure drains.
	AdmissionBudget int
}

// Result reports a run's measurements.
type Result struct {
	// ThroughputMbps is steady-state delivered throughput.
	ThroughputMbps float64
	// TxCPU and RxCPU are CPU utilizations over the run.
	TxCPU, RxCPU float64
	// Elapsed is the simulated time of the final delivery.
	Elapsed simtime.Time
	// Delivered counts messages received intact.
	Delivered int
}

// Host is one simulated DecStation.
type Host struct {
	Name  string
	sched *simtime.Scheduler
	cost  *machine.CostTable

	Sys *vm.System
	Reg *domain.Registry
	Mgr *core.Manager
	Env *xkernel.Env

	CPU *simtime.Resource
	Bus *simtime.Resource

	meter vm.Meter

	App *domain.Domain // where the test protocol runs
	Net *domain.Domain // where UDP/IP run

	Driver *osiris.Driver
	IP     *protocols.IP
	UDP    *protocols.UDP
	Test   *protocols.TestProto // data endpoint
	Ack    *protocols.TestProto // acknowledgement endpoint
	SWP    *protocols.SWP       // reliable transport (Config.UseSWP)

	peer    *Host
	linkID  int // faults.Plane link id for this host's outgoing direction
	txCount int
	dropped int
	lossRng uint64
	cfg     Config

	// ctxs are the aggregate arenas the host's protocol layers allocate
	// from; Shutdown closes them so their held node buffers drain.
	ctxs []*aggregate.Ctx
}

// Fault-plane link ids for the two directed links of the null modem.
const (
	LinkAB = 0 // host A -> host B
	LinkBA = 1 // host B -> host A
)

// hostTimers adapts the scheduler to the SWP retransmission TimerSource:
// a firing timer runs as a metered CPU task on its host.
type hostTimers struct{ h *Host }

func (ht hostTimers) After(d simtime.Duration, fn func()) {
	ht.h.sched.After(d, func() {
		_ = ht.h.Exec(ht.h.sched.Now(), func() error { fn(); return nil })
	})
}

const (
	dataPort = 100
	ackPort  = 101
	dataVCI  = osiris.VCI(5)
	ackVCI   = osiris.VCI(6)
)

// newHost builds a host for the given configuration. txVCI stamps its
// outgoing PDUs; rxVCI is preinstalled in its driver's cached table.
func newHost(sched *simtime.Scheduler, name string, cfg Config, txVCI, rxVCI osiris.VCI) (*Host, error) {
	frames := cfg.Frames
	if frames == 0 {
		frames = 32768
	}
	h := &Host{Name: name, sched: sched, cost: machine.DecStation5000()}
	if cfg.ZeroContention {
		h.cost.BusContention = 0
	}
	h.Sys = vm.NewSystem(h.cost, frames, &h.meter)
	h.Sys.FaultPlane = cfg.Faults
	h.Reg = domain.NewRegistry(h.Sys)
	h.Mgr = core.NewManager(h.Sys, h.Reg)
	h.Mgr.EmptyLeafInit = aggregate.EmptyLeafImage
	h.Env = xkernel.NewEnv(h.Sys, h.Mgr, h.Reg)
	if cfg.Obs != nil {
		h.Sys.Obs = cfg.Obs
		if name != "A" {
			h.Sys.TraceBase = 100
		}
		cfg.Obs.SetNow(sched.Now)
		h.Mgr.RegisterTraceNames(name + ".")
	}
	h.CPU = simtime.NewResource(sched, name+".cpu")
	h.Bus = simtime.NewResource(sched, name+".bus")

	kernel := h.Reg.Kernel()
	switch cfg.Placement {
	case KernelKernel:
		h.App, h.Net = kernel, kernel
	case UserUser:
		h.App, h.Net = h.Reg.New("app"), kernel
	case UserNetserverUser:
		h.App, h.Net = h.Reg.New("app"), h.Reg.New("netserver")
		if !cfg.NoTextPenalty {
			h.Env.Router.CrossingSurcharge = h.cost.TextDuplicationPenalty
		}
	default:
		return nil, fmt.Errorf("netsim: unknown placement %v", cfg.Placement)
	}
	h.Mgr.AttachDomain(h.App)
	h.Mgr.AttachDomain(h.Net)

	// Optional overload control: tenant classes arbitrating chunk grants
	// between the application data path and the protocol header paths.
	var appClass, protoClass *core.TenantClass
	if cfg.AdmissionBudget > 0 {
		adm := core.NewAdmission(cfg.AdmissionBudget)
		appClass = adm.Class("app", 3)
		protoClass = adm.Class("proto", 1)
		h.Mgr.SetAdmission(adm)
	}

	// Transmit-side data path: app -> (netserver ->) kernel.
	txDoms := dedupDomains(h.App, h.Net, kernel)
	appPath, err := h.Mgr.NewPath("tx-data", cfg.Opts, 16, txDoms...)
	if err != nil {
		return nil, err
	}
	appPath.SetQuota(64)
	appPath.SetTenant(appClass)
	appCtx, err := aggregate.NewCtx(h.Mgr, appPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}
	ackPath, err := h.Mgr.NewPath("tx-ack", cfg.Opts, 1, txDoms...)
	if err != nil {
		return nil, err
	}
	ackPath.SetQuota(32)
	ackPath.SetTenant(protoClass)
	ackCtx, err := aggregate.NewCtx(h.Mgr, ackPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}
	// UDP's header/node buffers live in the network-server domain (the
	// paper's user-netserver-user case places only UDP there); IP and the
	// driver always run in the kernel, so fragments never cross a domain
	// boundary individually — only whole messages do.
	udpDoms := dedupDomains(h.Net, kernel, h.App)
	udpPath, err := h.Mgr.NewPath("udp-hdrs", cfg.Opts, 1, udpDoms...)
	if err != nil {
		return nil, err
	}
	udpPath.SetQuota(32)
	udpPath.SetTenant(protoClass)
	udpCtx, err := aggregate.NewCtx(h.Mgr, udpPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}
	ipDoms := dedupDomains(kernel, h.Net, h.App)
	ipPath, err := h.Mgr.NewPath("ip-hdrs", cfg.Opts, 1, ipDoms...)
	if err != nil {
		return nil, err
	}
	ipPath.SetQuota(32)
	ipPath.SetTenant(protoClass)
	ipCtx, err := aggregate.NewCtx(h.Mgr, ipPath, cfg.Opts.Integrated)
	if err != nil {
		return nil, err
	}

	h.Test = protocols.NewTestProto(h.Env, appCtx)
	h.Ack = protocols.NewTestProto(h.Env, ackCtx)
	h.UDP = protocols.NewUDP(h.Env, udpCtx, dataPort, dataPort)
	h.IP = protocols.NewIP(h.Env, ipCtx, cfg.PDUBytes)

	// Receive-side: wire PDUs hold PDU payload plus protocol headers.
	rxPages := (cfg.PDUBytes+protocols.UDPHeaderBytes+protocols.IPHeaderBytes)/machine.PageSize + 1
	rxDoms := dedupDomains(kernel, h.Net, h.App)
	h.Driver = osiris.NewDriver(h.Env, cfg.Opts, rxDoms, rxPages)
	h.Driver.TxVCI = txVCI
	h.Driver.CPUOffset = func() simtime.Duration { return h.meter.Total }
	if err := h.Driver.AddVCI(rxVCI); err != nil {
		return nil, err
	}

	if cfg.UseRings {
		// Enable the ring data plane before any Connect runs so the
		// cross-domain links ring-attach their domain pairs (the doorbell
		// cost latches the surcharge set by the placement above). The
		// spin-then-block policy runs on the host's live virtual clock.
		h.Env.Router.EnableRings(h.virtualNow)
		h.Test.Rings = true
		h.Ack.Rings = true
		h.UDP.Rings = true
		h.IP.Rings = true
		h.Driver.Rings = true
	}

	dataSess := h.UDP.OpenSession(dataPort, dataPort)
	ackSess := h.UDP.OpenSession(ackPort, ackPort)
	if cfg.UseSWP {
		// test <-> SWP <-> UDP session: the transport provides windowing,
		// ordering, and retransmission over the (possibly lossy) link.
		h.SWP = protocols.NewSWP(h.Env, ackCtx, hostTimers{h})
		h.SWP.Rings = cfg.UseRings
		h.SWP.Window = cfg.Window
		if h.SWP.Window <= 0 {
			h.SWP.Window = 8
		}
		// Retransmission timeout scaled to the workload: a full window of
		// messages must fit comfortably inside one RTO at link speed
		// (~50 ns/byte at ~160 Mb/s effective), or clean transfers would
		// time out spuriously and spiral.
		h.SWP.RTO = simtime.MS(10) + simtime.Duration(int64(cfg.MsgBytes)*int64(h.SWP.Window)*50)
		if adm := h.Mgr.Admission(); adm != nil {
			// Admission rejections shrink the sender's effective window:
			// overload slows senders instead of thrashing the allocator.
			h.SWP.Backpressure = adm.Pressured
		}
		xkernel.Connect(h.Env, h.Test, h.SWP)
		xkernel.Connect(h.Env, h.SWP, dataSess)
		h.UDP.Bind(dataPort, xkernel.Attach(h.Env, h.SWP, h.UDP.Dom()))
	} else {
		xkernel.Connect(h.Env, h.Test, dataSess)
		h.UDP.Bind(dataPort, xkernel.Attach(h.Env, h.Test, h.UDP.Dom()))
	}
	xkernel.Connect(h.Env, h.Ack, ackSess)
	xkernel.Connect(h.Env, h.UDP, h.IP)
	xkernel.Connect(h.Env, h.IP, h.Driver)
	h.UDP.Bind(ackPort, xkernel.Attach(h.Env, h.Ack, h.UDP.Dom()))
	h.Test.Verify = cfg.Verify
	h.ctxs = []*aggregate.Ctx{appCtx, ackCtx, udpCtx, ipCtx}
	h.cfg = cfg
	return h, nil
}

// virtualNow is the live virtual instant inside a metered task: the event
// clock plus the CPU work the running task has accrued so far. The ring
// spin-then-block policy keys off it.
func (h *Host) virtualNow() simtime.Time {
	return h.sched.Now() + h.meter.Total
}

// Shutdown tears the host's protocol stack down after a run: every
// aggregate arena and the driver's reassembly contexts release their held
// buffer references. After Shutdown (and notice draining) a quiesced host
// must pass Manager.CheckConverged — the chaos harness's leak check.
func (h *Host) Shutdown() error {
	if _, err := h.IP.FlushPartial(); err != nil {
		return err
	}
	for _, c := range h.ctxs {
		if err := c.Close(); err != nil {
			return err
		}
	}
	h.ctxs = nil
	return h.Driver.Close()
}

func dedupDomains(ds ...*domain.Domain) []*domain.Domain {
	var out []*domain.Domain
	seen := map[*domain.Domain]bool{}
	for _, d := range ds {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// Exec runs task at event time `ready`, metering its simulated CPU work,
// occupying the CPU, and flushing any PDUs the task queued at the driver
// (each PDU's DMA may begin as soon as the CPU reached the point where the
// stack finished preparing it — fragmentation pipelines with
// transmission). Task errors are returned.
func (h *Host) Exec(ready simtime.Time, task func() error) error {
	h.meter.Total = 0
	if o := h.Sys.Obs; o != nil {
		// While the task runs, the span clock advances with the simulated
		// CPU work the task accrues, anchored at its release time — so
		// spans inside the task get real durations even though the event
		// clock only moves between scheduler events.
		o.SetSpanNow(func() simtime.Time { return ready + h.meter.Total })
		defer o.SetSpanNow(nil)
	}
	err := task()
	d := h.meter.Take()
	end := h.CPU.ExecAt(ready, d, nil)
	start := end - d
	for _, pdu := range h.Driver.TakeTxQueue() {
		h.transmit(pdu, start+pdu.CPUOffset)
	}
	return err
}

// transmit models one PDU's journey: segmentation DMA on the local bus,
// cell serialization on the link, reassembly DMA on the peer's bus
// (overlapped cell by cell with transmission), then a receive interrupt.
// With a fault plane attached, the link may additionally drop, corrupt,
// duplicate, or reorder the PDU (faults.LinkVerdict).
func (h *Host) transmit(pdu osiris.TxPDU, dmaReady simtime.Time) {
	peer := h.peer
	h.txCount++
	if h.cfg.DropEvery > 0 {
		// Deterministic pseudo-random loss at rate 1/DropEvery. A strict
		// every-Nth pattern can alias with a message's PDU count so the
		// same fragment is lost on every retransmission; an LCG keeps the
		// run reproducible without that pathology.
		h.lossRng = h.lossRng*6364136223846793005 + 1442695040888963407
		if (h.lossRng>>33)%uint64(h.cfg.DropEvery) == 0 {
			// The link corrupts this PDU: transmit-side bus and link
			// time are spent, but nothing arrives at the peer.
			h.dropped++
			h.Bus.ExecAt(dmaReady, osiris.BusTime(h.cost, len(pdu.Data)), nil)
			return
		}
	}
	verdict := h.cfg.Faults.LinkVerdict(h.linkID, dmaReady)
	if verdict != faults.Deliver {
		if o := h.Sys.Obs; o != nil {
			o.Emit(obs.EvLinkFault, obs.NoActor, obs.NoTrack, 0, int64(verdict))
		}
	}
	if verdict == faults.Drop {
		// Loss or partition: transmit-side bus and link time are spent,
		// nothing arrives. SWP sees a missing ack and backs off.
		h.dropped++
		h.Bus.ExecAt(dmaReady, osiris.BusTime(h.cost, len(pdu.Data)), nil)
		return
	}
	data := pdu.Data
	if verdict == faults.Corrupt {
		// Flip a payload byte in a copy (the queued PDU may be the
		// retransmission source upstream); the peer adapter's CRC check
		// discards the damaged frame, so corruption degenerates to loss
		// after full link and bus costs.
		data = append([]byte(nil), pdu.Data...)
		if len(data) > 0 {
			data[len(data)/2] ^= 0xff
		}
	}
	busTime := osiris.BusTime(h.cost, len(pdu.Data))
	cellTime := h.cost.BusCellDMA + h.cost.BusContention
	txEnd := h.Bus.ExecAt(dmaReady, busTime, nil)
	txStart := txEnd - busTime
	// The first cell lands at the peer one cell-DMA plus link
	// serialization plus propagation after transmission starts; the
	// peer's bus then streams the remaining cells in.
	firstArrival := txStart + cellTime + h.cost.LinkCell + h.cost.LinkPropagation
	rxEnd := peer.Bus.ExecAt(firstArrival, busTime, nil)
	if o := h.Sys.Obs; o != nil {
		// The PDU's wire occupancy — segmentation DMA through reassembly
		// completion — charged to the trace stamped on it at Push time.
		o.SpanRecord(pdu.Trace, span.StageLink, "net", span.NoActor, txStart, rxEnd, int64(len(pdu.Data)))
	}
	deliverAt := rxEnd
	if verdict == faults.Reorder {
		// The cells landed, but the completion interrupt is deferred past
		// a couple of subsequent PDU times, so later PDUs overtake this
		// one at the transport. The delay is a pure function of PDU size,
		// keeping the schedule seed-deterministic.
		deliverAt += 2*busTime + simtime.MS(1)
	}
	h.deliverPDU(pdu.VCI, data, pdu.CRC, pdu.Trace, deliverAt)
	if verdict == faults.Duplicate {
		// The second copy occupies the peer bus again and arrives just
		// behind the first; SWP's duplicate suppression absorbs it.
		rxEnd2 := peer.Bus.ExecAt(rxEnd, busTime, nil)
		h.deliverPDU(pdu.VCI, pdu.Data, pdu.CRC, pdu.Trace, rxEnd2)
	}
}

// deliverPDU schedules the receive interrupt on the peer. Fault-plane runs
// route through the adapter's CRC check so corrupted frames are discarded;
// plain runs keep the historical CRC-oblivious path byte-for-byte. The
// PDU's trace id rides along so the peer's receive spans land in the same
// trace the sender opened.
func (h *Host) deliverPDU(v osiris.VCI, data []byte, crc uint32, trace uint64, at simtime.Time) {
	peer := h.peer
	h.sched.At(at, func() {
		_ = peer.Exec(at, func() error {
			if o := peer.Sys.Obs; o != nil {
				o.ResumeTrace(trace)
			}
			if h.cfg.Faults != nil {
				return peer.Driver.ReceiveChecked(v, data, crc)
			}
			return peer.Driver.Receive(v, data)
		})
	})
}

// E2E is one end-to-end experiment run.
type E2E struct {
	Sched *simtime.Scheduler
	Cfg   Config
	A, B  *Host // A sends data, B sinks it and returns acks

	sent, acked int
	window      int
	delivered   int
	firstAt     simtime.Time
	lastAt      simtime.Time
	err         error
}

// NewE2E builds the two hosts and the window controller.
func NewE2E(cfg Config) (*E2E, error) {
	if cfg.Count < 2 {
		cfg.Count = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	sched := simtime.NewScheduler()
	a, err := newHost(sched, "A", cfg, dataVCI, ackVCI)
	if err != nil {
		return nil, err
	}
	b, err := newHost(sched, "B", cfg, ackVCI, dataVCI)
	if err != nil {
		return nil, err
	}
	a.peer, b.peer = b, a
	a.linkID, b.linkID = LinkAB, LinkBA
	// Acknowledgements trace as their own transfer class so the reverse
	// path's latency does not pollute the data path's distribution.
	a.Ack.Label, b.Ack.Label = "ack", "ack"
	e := &E2E{Sched: sched, Cfg: cfg, A: a, B: b, window: cfg.Window}

	// Receiver: consume the message, record delivery, return an ack (the
	// SWP transport acknowledges on its own).
	b.Test.OnDeliver = func(n int) {
		e.delivered++
		now := sched.Now()
		if e.delivered == 1 {
			e.firstAt = now
		}
		e.lastAt = now
		if cfg.UseSWP {
			return
		}
		if err := b.Ack.SendUntouched(64); err != nil && e.err == nil {
			e.err = err
		}
	}
	// Sender: each ack opens the window (harness mode only).
	a.Ack.OnDeliver = func(int) {
		e.acked++
		e.window++
		e.pump()
	}
	if cfg.UseSWP {
		// SWP does its own windowing; hand it the whole workload.
		e.window = cfg.Count
	}
	return e, nil
}

// pump sends while window credit remains. It runs inside a host task (or
// the initial task), so its costs meter into the surrounding work.
func (e *E2E) pump() {
	for e.window > 0 && e.sent < e.Cfg.Count {
		e.window--
		e.sent++
		var err error
		if e.Cfg.Verify {
			err = e.A.Test.Send(uint64(e.sent-1), e.Cfg.MsgBytes)
		} else {
			err = e.A.Test.SendUntouched(e.Cfg.MsgBytes)
		}
		if err != nil && e.err == nil {
			e.err = err
			return
		}
	}
}

// Run drives the experiment to completion and reports measurements.
func (e *E2E) Run() (Result, error) {
	if err := e.A.Exec(0, func() error { e.pump(); return nil }); err != nil {
		return Result{}, err
	}
	e.Sched.Run(0)
	if e.err != nil {
		return Result{}, e.err
	}
	if e.A.SWP != nil && e.A.SWP.Err != nil {
		return Result{}, e.A.SWP.Err
	}
	if e.delivered < e.Cfg.Count {
		return Result{}, fmt.Errorf("netsim: only %d of %d messages delivered", e.delivered, e.Cfg.Count)
	}
	res := Result{
		Elapsed:   e.lastAt,
		Delivered: e.delivered,
		TxCPU:     e.A.CPU.Utilization(),
		RxCPU:     e.B.CPU.Utilization(),
	}
	if e.delivered >= 2 && e.lastAt > e.firstAt {
		bytes := int64(e.Cfg.MsgBytes) * int64(e.delivered-1)
		res.ThroughputMbps = simtime.Mbps(bytes, e.lastAt-e.firstAt)
	}
	return res, nil
}

// Run is the one-call entry point used by the benchmark harness.
func Run(cfg Config) (Result, error) {
	e, err := NewE2E(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
