package netsim

import (
	"testing"
)

func TestSWPTransportLossless(t *testing.T) {
	res, err := Run(Config{
		Placement: UserUser,
		Opts:      cachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  64 * 1024,
		Count:     8,
		UseSWP:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 8 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	if res.ThroughputMbps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestSWPTransportSurvivesLoss(t *testing.T) {
	e, err := NewE2E(Config{
		Placement: UserUser,
		Opts:      cachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  48 * 1024,
		Count:     10,
		UseSWP:    true,
		DropEvery: 7, // the link corrupts every 7th PDU, both directions
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 {
		t.Fatalf("delivered %d of 10 despite retransmission", res.Delivered)
	}
	if e.A.dropped == 0 && e.B.dropped == 0 {
		t.Fatal("lossy link dropped nothing")
	}
	if e.A.SWP.Retransmits == 0 {
		t.Fatal("no retransmissions despite loss")
	}
	if e.B.Test.ReceivedBytes != uint64(10*48*1024) {
		t.Fatalf("received %d bytes", e.B.Test.ReceivedBytes)
	}
	if err := e.A.Mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.B.Mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSWPTransportThroughputComparable(t *testing.T) {
	// Over a clean link, the SWP transport should reach the same I/O
	// ceiling as the harness-acknowledged configuration for large
	// messages.
	harness, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 512 * 1024, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	swp, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 512 * 1024, Count: 5, UseSWP: true})
	if err != nil {
		t.Fatal(err)
	}
	if swp.ThroughputMbps < 0.9*harness.ThroughputMbps {
		t.Errorf("SWP transport %.0f Mb/s vs harness %.0f", swp.ThroughputMbps, harness.ThroughputMbps)
	}
}

func TestLossWithoutSWPLosesMessages(t *testing.T) {
	// Negative control: the harness scheme has no retransmission, so a
	// lossy link must surface as missing deliveries.
	e, err := NewE2E(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 48 * 1024, Count: 6, DropEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("lossy link without SWP should fail to deliver everything")
	}
}
