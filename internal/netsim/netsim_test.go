package netsim

import (
	"testing"

	"fbufs/internal/core"
)

func cachedVolatile() core.Options { return core.CachedVolatile() }

func uncachedNonVolatile() core.Options {
	o := core.UncachedNonVolatile()
	o.Integrated = true // the system is integrated either way
	return o
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEndToEndDeliversAllMessages(t *testing.T) {
	for _, p := range []Placement{KernelKernel, UserUser, UserNetserverUser} {
		t.Run(p.String(), func(t *testing.T) {
			res := run(t, Config{
				Placement: p,
				Opts:      cachedVolatile(),
				PDUBytes:  16 * 1024,
				MsgBytes:  64 * 1024,
				Count:     6,
				Window:    4,
			})
			if res.Delivered != 6 {
				t.Fatalf("delivered %d", res.Delivered)
			}
			if res.ThroughputMbps <= 0 {
				t.Fatal("no throughput measured")
			}
		})
	}
}

func TestLargeMessagesAreIOBound(t *testing.T) {
	// Figure 5: with cached/volatile fbufs, large-message throughput hits
	// the 285 Mb/s I/O ceiling regardless of domain crossings.
	for _, p := range []Placement{KernelKernel, UserUser, UserNetserverUser} {
		t.Run(p.String(), func(t *testing.T) {
			res := run(t, Config{
				Placement: p,
				Opts:      cachedVolatile(),
				PDUBytes:  16 * 1024,
				MsgBytes:  1 << 20,
				Count:     5,
			})
			if res.ThroughputMbps < 265 || res.ThroughputMbps > 290 {
				t.Errorf("%v: %.0f Mb/s, want ~285 (I/O bound)", p, res.ThroughputMbps)
			}
			if res.RxCPU >= 0.95 {
				t.Errorf("%v: receive CPU saturated (%.0f%%) despite cached fbufs", p, res.RxCPU*100)
			}
		})
	}
}

func TestDomainCrossingsFreeForLargeMessages(t *testing.T) {
	// "domain crossings have virtually no effect on end-to-end throughput
	// for large messages (>256KB) when cached/volatile fbufs are used".
	base := run(t, Config{Placement: KernelKernel, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 512 * 1024, Count: 5})
	uu := run(t, Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 512 * 1024, Count: 5})
	if uu.ThroughputMbps < 0.93*base.ThroughputMbps {
		t.Errorf("user-user %.0f vs kernel-kernel %.0f: crossings not free",
			uu.ThroughputMbps, base.ThroughputMbps)
	}
}

func TestMediumMessagesPayPerCrossing(t *testing.T) {
	// For medium sizes IPC latency costs throughput per crossing, and the
	// third domain costs extra (duplicated text).
	const size = 16 * 1024
	kk := run(t, Config{Placement: KernelKernel, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: size, Count: 8})
	uu := run(t, Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: size, Count: 8})
	unu := run(t, Config{Placement: UserNetserverUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: size, Count: 8})
	if !(kk.ThroughputMbps > uu.ThroughputMbps && uu.ThroughputMbps > unu.ThroughputMbps) {
		t.Errorf("medium-size ordering violated: kk=%.0f uu=%.0f unu=%.0f",
			kk.ThroughputMbps, uu.ThroughputMbps, unu.ThroughputMbps)
	}
	// Second crossing penalty exceeds the first (text duplication).
	d1 := kk.ThroughputMbps - uu.ThroughputMbps
	d2 := uu.ThroughputMbps - unu.ThroughputMbps
	if d2 <= d1 {
		t.Errorf("second-crossing penalty %.0f not larger than first %.0f", d2, d1)
	}
}

func TestUncachedDegradesAndSaturatesRxCPU(t *testing.T) {
	// Figure 6: uncached fbufs degrade user-user throughput (paper: ~12%)
	// and leave the receive-side CPU saturated while cached fbufs leave
	// headroom.
	cached := run(t, Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 1 << 20, Count: 5})
	uncached := run(t, Config{Placement: UserUser, Opts: uncachedNonVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 1 << 20, Count: 5})
	if uncached.ThroughputMbps >= 0.95*cached.ThroughputMbps {
		t.Errorf("uncached %.0f Mb/s not below cached %.0f", uncached.ThroughputMbps, cached.ThroughputMbps)
	}
	if uncached.ThroughputMbps < 0.6*cached.ThroughputMbps {
		t.Errorf("uncached %.0f Mb/s degrades too much vs cached %.0f (paper: ~12%%)",
			uncached.ThroughputMbps, cached.ThroughputMbps)
	}
	if uncached.RxCPU < 0.9 {
		t.Errorf("uncached receive CPU %.0f%%, want saturated", uncached.RxCPU*100)
	}
	if cached.RxCPU > 0.8*uncached.RxCPU {
		t.Errorf("cached rx CPU %.0f%% not clearly below uncached %.0f%%",
			cached.RxCPU*100, uncached.RxCPU*100)
	}
}

func TestNetserverCaseOnlyMarginallyLower(t *testing.T) {
	// Figure 6: "the throughput achieved in the user-netserver-user case
	// is only marginally lower. The reason is that UDP ... does not
	// access the message's body. Thus, there is no need to ever map the
	// corresponding pages into the netserver domain."
	uu := run(t, Config{Placement: UserUser, Opts: uncachedNonVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 1 << 20, Count: 5})
	unu := run(t, Config{Placement: UserNetserverUser, Opts: uncachedNonVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 1 << 20, Count: 5})
	if unu.ThroughputMbps < 0.85*uu.ThroughputMbps {
		t.Errorf("netserver case %.0f vs user-user %.0f: more than marginally lower",
			unu.ThroughputMbps, uu.ThroughputMbps)
	}
}

func TestLargerPDUHelpsUncached(t *testing.T) {
	// Section 4: "setting IP's PDU size to 32 KBytes ... cuts protocol
	// processing overheads roughly in half ... the uncached throughput
	// approaches the cached throughput for large messages."
	c16 := run(t, Config{Placement: UserUser, Opts: uncachedNonVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 1 << 20, Count: 5})
	c32 := run(t, Config{Placement: UserUser, Opts: uncachedNonVolatile(),
		PDUBytes: 32 * 1024, MsgBytes: 1 << 20, Count: 5})
	if c32.ThroughputMbps <= c16.ThroughputMbps {
		t.Errorf("32KB PDU %.0f Mb/s not better than 16KB %.0f", c32.ThroughputMbps, c16.ThroughputMbps)
	}
	cached32 := run(t, Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 32 * 1024, MsgBytes: 1 << 20, Count: 5})
	if c32.ThroughputMbps < 0.9*cached32.ThroughputMbps {
		t.Errorf("at 32KB PDU uncached %.0f should approach cached %.0f",
			c32.ThroughputMbps, cached32.ThroughputMbps)
	}
	// The benefit of caching persists as reduced CPU load.
	if cached32.RxCPU >= c32.RxCPU {
		t.Errorf("cached rx load %.0f%% not below uncached %.0f%% at 32KB PDU",
			cached32.RxCPU*100, c32.RxCPU*100)
	}
}

func TestThroughputRisesWithMessageSize(t *testing.T) {
	var prev float64
	for _, size := range []int{8 * 1024, 64 * 1024, 512 * 1024} {
		res := run(t, Config{Placement: UserUser, Opts: cachedVolatile(),
			PDUBytes: 16 * 1024, MsgBytes: size, Count: 6})
		if res.ThroughputMbps <= prev {
			t.Errorf("throughput did not rise at %d bytes: %.0f after %.0f",
				size, res.ThroughputMbps, prev)
		}
		prev = res.ThroughputMbps
	}
}

func TestSharedLibrariesAblation(t *testing.T) {
	// Removing the duplicated-text penalty (shared libraries) improves
	// the three-domain medium-size case.
	with := run(t, Config{Placement: UserNetserverUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 8 * 1024, Count: 8, Window: 1})
	without := run(t, Config{Placement: UserNetserverUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 8 * 1024, Count: 8, Window: 1, NoTextPenalty: true})
	if without.ThroughputMbps <= with.ThroughputMbps {
		t.Errorf("shared libraries should help: %.0f vs %.0f",
			without.ThroughputMbps, with.ThroughputMbps)
	}
}

func TestVCIDemuxUsesCachedPath(t *testing.T) {
	e, err := NewE2E(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.B.Driver.RxUncachedAllocs != 0 {
		t.Errorf("known VCI used %d uncached buffers", e.B.Driver.RxUncachedAllocs)
	}
	if e.B.Driver.RxCachedAllocs == 0 {
		t.Error("no cached reassembly buffers used")
	}
	if err := e.B.Mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := e.A.Mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
