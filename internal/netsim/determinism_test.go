package netsim

import (
	"testing"

	"fbufs/internal/core"
)

// TestDeterminism: the simulation is single-threaded and avoids wall-clock
// and map-iteration-order dependence in results; identical configurations
// must produce bit-identical measurements.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Placement: UserNetserverUser,
		Opts:      cachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  192 * 1024,
		Count:     6,
		Window:    3,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

// TestWindowOneSerializes: with a window of one, each message waits for
// its acknowledgement; throughput is bounded by the full round trip.
func TestWindowOneSerializes(t *testing.T) {
	w1, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 8, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	w8, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 8, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w1.ThroughputMbps >= w8.ThroughputMbps {
		t.Errorf("window 1 (%.0f) not slower than window 8 (%.0f)",
			w1.ThroughputMbps, w8.ThroughputMbps)
	}
}

// TestAllDataVerifiedEndToEnd runs with tiny counts but full payload
// verification through the receive-side test protocol.
func TestAllDataVerifiedEndToEnd(t *testing.T) {
	e, err := NewE2E(Config{Placement: UserNetserverUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 48 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.B.Test.Verify = false // pattern depends on seq; verified via byte totals
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.B.Test.ReceivedBytes != uint64(4*48*1024) {
		t.Fatalf("received %d bytes", e.B.Test.ReceivedBytes)
	}
	if e.B.IP.Dropped != 0 || e.B.UDP.Dropped != 0 {
		t.Fatalf("drops: ip=%d udp=%d", e.B.IP.Dropped, e.B.UDP.Dropped)
	}
}

// TestUncachedVolatileEndToEnd exercises the remaining option combination
// over the full two-host path.
func TestUncachedVolatileEndToEnd(t *testing.T) {
	opts := core.Uncached()
	opts.Integrated = true
	res, err := Run(Config{Placement: UserUser, Opts: opts,
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 4 || res.ThroughputMbps <= 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestCachedNonVolatileEndToEnd: eager immutability enforcement across the
// wire path (securing costs land on the transmit host only, since the
// receive side's fbufs originate in the trusted kernel).
func TestCachedNonVolatileEndToEnd(t *testing.T) {
	opts := core.CachedNonVolatile()
	opts.Integrated = true
	res, err := Run(Config{Placement: UserUser, Opts: opts,
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 4 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// Non-volatile costs only dent the transmitter, so throughput stays
	// near the cached/volatile result.
	cv, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps < 0.85*cv.ThroughputMbps {
		t.Errorf("non-volatile %.0f too far below volatile %.0f",
			res.ThroughputMbps, cv.ThroughputMbps)
	}
}
