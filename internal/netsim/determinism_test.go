package netsim

import (
	"bytes"
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/faults"
	"fbufs/internal/obs"
	"fbufs/internal/simtime"
)

// TestDeterminism: the simulation is single-threaded and avoids wall-clock
// and map-iteration-order dependence in results; identical configurations
// must produce bit-identical measurements.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Placement: UserNetserverUser,
		Opts:      cachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  192 * 1024,
		Count:     6,
		Window:    3,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

// TestDeterminismWithFaults: the fault plane draws from its own seeded
// stream, so identical seeds and link-fault schedules must yield not just
// identical Results but byte-identical trace exports — every drop,
// corruption, duplicate, retransmission, and backoff lands at the same
// simulated instant in the same order.
func TestDeterminismWithFaults(t *testing.T) {
	run := func() (Result, []byte) {
		plane := faults.NewPlane(99)
		ab := plane.Link(LinkAB)
		ab.DropPerMillion = 40000
		ab.CorruptPerMillion = 20000
		ab.DupPerMillion = 10000
		ab.ReorderPerMillion = 20000
		ba := plane.Link(LinkBA)
		ba.DropPerMillion = 25000
		ab.AddPartition(simtime.MS(5), simtime.MS(12))
		ba.AddPartition(simtime.MS(5), simtime.MS(12))

		o := obs.New(1 << 16)
		e, err := NewE2E(Config{
			Opts:     cachedVolatile(),
			PDUBytes: 16 * 1024,
			MsgBytes: 48 * 1024,
			Count:    10,
			Window:   4,
			UseSWP:   true,
			Verify:   true,
			Faults:   plane,
			Obs:      o,
			Frames:   8192,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.A.SWP.SeedJitter(12345)
		e.B.SWP.SeedJitter(67890)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := o.Tracer.WriteChromeTrace(&trace); err != nil {
			t.Fatal(err)
		}
		return res, trace.Bytes()
	}

	first, firstTrace := run()
	if first.Delivered != 10 {
		t.Fatalf("delivered %d of 10", first.Delivered)
	}
	for i := 0; i < 2; i++ {
		again, againTrace := run()
		if again != first {
			t.Fatalf("run %d result diverged: %+v vs %+v", i, again, first)
		}
		if !bytes.Equal(againTrace, firstTrace) {
			t.Fatalf("run %d trace diverged (%d vs %d bytes)",
				i, len(againTrace), len(firstTrace))
		}
	}
}

// TestWindowOneSerializes: with a window of one, each message waits for
// its acknowledgement; throughput is bounded by the full round trip.
func TestWindowOneSerializes(t *testing.T) {
	w1, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 8, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	w8, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 64 * 1024, Count: 8, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w1.ThroughputMbps >= w8.ThroughputMbps {
		t.Errorf("window 1 (%.0f) not slower than window 8 (%.0f)",
			w1.ThroughputMbps, w8.ThroughputMbps)
	}
}

// TestAllDataVerifiedEndToEnd runs with tiny counts but full payload
// verification through the receive-side test protocol.
func TestAllDataVerifiedEndToEnd(t *testing.T) {
	e, err := NewE2E(Config{Placement: UserNetserverUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 48 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	e.B.Test.Verify = false // pattern depends on seq; verified via byte totals
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.B.Test.ReceivedBytes != uint64(4*48*1024) {
		t.Fatalf("received %d bytes", e.B.Test.ReceivedBytes)
	}
	if e.B.IP.Dropped != 0 || e.B.UDP.Dropped != 0 {
		t.Fatalf("drops: ip=%d udp=%d", e.B.IP.Dropped, e.B.UDP.Dropped)
	}
}

// TestUncachedVolatileEndToEnd exercises the remaining option combination
// over the full two-host path.
func TestUncachedVolatileEndToEnd(t *testing.T) {
	opts := core.Uncached()
	opts.Integrated = true
	res, err := Run(Config{Placement: UserUser, Opts: opts,
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 4 || res.ThroughputMbps <= 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestCachedNonVolatileEndToEnd: eager immutability enforcement across the
// wire path (securing costs land on the transmit host only, since the
// receive side's fbufs originate in the trusted kernel).
func TestCachedNonVolatileEndToEnd(t *testing.T) {
	opts := core.CachedNonVolatile()
	opts.Integrated = true
	res, err := Run(Config{Placement: UserUser, Opts: opts,
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 4 {
		t.Fatalf("delivered %d", res.Delivered)
	}
	// Non-volatile costs only dent the transmitter, so throughput stays
	// near the cached/volatile result.
	cv, err := Run(Config{Placement: UserUser, Opts: cachedVolatile(),
		PDUBytes: 16 * 1024, MsgBytes: 256 * 1024, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps < 0.85*cv.ThroughputMbps {
		t.Errorf("non-volatile %.0f too far below volatile %.0f",
			res.ThroughputMbps, cv.ThroughputMbps)
	}
}
