package netsim

import (
	"testing"
)

// TestAdmissionBudgetInstallsController checks the Config.AdmissionBudget
// wiring: both hosts get a weighted controller (app 3, proto 1), the data
// and header paths carry their tenant classes, SWP's backpressure hook
// polls the controller, and a comfortably-budgeted run still delivers
// everything.
func TestAdmissionBudgetInstallsController(t *testing.T) {
	e, err := NewE2E(Config{
		Placement:       UserUser,
		Opts:            cachedVolatile(),
		PDUBytes:        16 * 1024,
		MsgBytes:        64 * 1024,
		Count:           6,
		Window:          4,
		UseSWP:          true,
		AdmissionBudget: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Host{e.A, e.B} {
		adm := h.Mgr.Admission()
		if adm == nil {
			t.Fatalf("host %s: no admission controller installed", h.Name)
		}
		if adm.Budget() != 64 {
			t.Fatalf("host %s: budget %d, want 64", h.Name, adm.Budget())
		}
		if len(adm.Classes()) != 2 {
			t.Fatalf("host %s: %d tenant classes, want 2 (app, proto)", h.Name, len(adm.Classes()))
		}
		if h.SWP != nil && h.SWP.Backpressure == nil {
			t.Fatalf("host %s: SWP backpressure hook not wired to admission", h.Name)
		}
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 6 {
		t.Fatalf("delivered %d of 6 under admission control", res.Delivered)
	}
}

// TestAdmissionBudgetOffByDefault: the zero config installs nothing, so
// pre-existing workloads are untouched.
func TestAdmissionBudgetOffByDefault(t *testing.T) {
	e, err := NewE2E(Config{
		Placement: UserUser,
		Opts:      cachedVolatile(),
		PDUBytes:  16 * 1024,
		MsgBytes:  32 * 1024,
		Count:     2,
		Window:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.A.Mgr.Admission() != nil || e.B.Mgr.Admission() != nil {
		t.Fatal("admission controller installed without AdmissionBudget")
	}
}
