// Package domain implements simulated protection domains. A domain is an
// address space plus an identity and a trust attribute; the kernel is the
// distinguished trusted domain. Data paths (package core) are sequences of
// domains, and the transfer experiments move buffers between them.
//
// Domain termination — including abnormal termination while holding fbuf
// references — is modelled here, because the paper's design discussion
// (section 3.3) hinges on it: a dying receiver's references must be
// relinquished, and a dying originator's fbuf chunks must be retained by the
// kernel until external references drain.
package domain

import (
	"fmt"
	"sort"

	"fbufs/internal/faults"
	"fbufs/internal/vm"
)

// ID identifies a domain within one host.
type ID int

// KernelID is the kernel's domain ID.
const KernelID ID = 0

// Domain is one protection domain.
type Domain struct {
	ID      ID
	Name    string
	AS      *vm.AddrSpace
	Trusted bool // the kernel; immutability enforcement is a no-op for it

	dead bool

	// deathHooks run on Terminate, in registration order. The fbuf
	// manager registers a hook to release references and retain chunks.
	deathHooks []func(*Domain)
}

// Dead reports whether the domain has terminated.
func (d *Domain) Dead() bool { return d.dead }

// OnDeath registers a hook invoked when the domain terminates.
func (d *Domain) OnDeath(fn func(*Domain)) { d.deathHooks = append(d.deathHooks, fn) }

// String returns "name(id)".
func (d *Domain) String() string { return fmt.Sprintf("%s(%d)", d.Name, d.ID) }

// Registry manages the domains of one host.
//
// Concurrency: domain lifecycle — New, Terminate, CrashPoint, OnDeath — is
// control-plane and single-threaded by contract (see DESIGN.md §10); only
// the data-plane fbuf operations run concurrently. Reads of an established
// domain (Get, Dead, Trusted, the AS pointer) are safe from workers once
// setup has completed, because nothing mutates those fields outside the
// lifecycle calls.
type Registry struct {
	sys     *vm.System
	domains map[ID]*Domain
	nextID  ID
	kernel  *Domain

	// Crashes counts fault-plane-injected terminations via CrashPoint.
	Crashes uint64
}

// NewRegistry creates a registry with a kernel domain already present.
func NewRegistry(sys *vm.System) *Registry {
	r := &Registry{sys: sys, domains: make(map[ID]*Domain)}
	r.kernel = &Domain{
		ID:      KernelID,
		Name:    "kernel",
		AS:      sys.NewAddrSpace("kernel"),
		Trusted: true,
	}
	r.kernel.AS.Owner = int(KernelID)
	r.domains[KernelID] = r.kernel
	r.nextID = 1
	return r
}

// Kernel returns the kernel domain.
func (r *Registry) Kernel() *Domain { return r.kernel }

// New creates a user-level domain.
func (r *Registry) New(name string) *Domain {
	d := &Domain{
		ID:   r.nextID,
		Name: name,
		AS:   r.sys.NewAddrSpace(name),
	}
	d.AS.Owner = int(d.ID)
	r.nextID++
	r.domains[d.ID] = d
	return d
}

// All returns every domain, sorted by ID (trace-name registration).
func (r *Registry) All() []*Domain {
	out := make([]*Domain, 0, len(r.domains))
	for _, d := range r.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the domain with the given ID, or nil.
func (r *Registry) Get(id ID) *Domain { return r.domains[id] }

// Live returns the number of live domains (including the kernel).
func (r *Registry) Live() int {
	n := 0
	for _, d := range r.domains {
		if !d.dead {
			n++
		}
	}
	return n
}

// CrashPoint consults the fault plane (the host vm.System's, same plane
// every layer shares) for an injected abnormal termination of d at an
// operation boundary, and performs it with the full Terminate path — death
// hooks, reference release, address-space teardown — exactly as a real
// crash would. It reports whether the domain died. Kernel and already-dead
// domains never crash; a nil plane makes this one pointer check.
func (r *Registry) CrashPoint(d *Domain) bool {
	if d.ID == KernelID || d.dead {
		return false
	}
	if !r.sys.FaultPlane.Should(faults.DomainCrash) {
		return false
	}
	r.Crashes++
	r.Terminate(d)
	return true
}

// Terminate ends a domain, normally or abnormally: death hooks run first
// (releasing fbuf references, closing endpoints), then the address space is
// destroyed. Terminating the kernel is a simulator bug and panics.
func (r *Registry) Terminate(d *Domain) {
	if d.ID == KernelID {
		panic("domain: cannot terminate the kernel")
	}
	if d.dead {
		return
	}
	d.dead = true
	for _, fn := range d.deathHooks {
		fn(d)
	}
	d.AS.Destroy()
}
