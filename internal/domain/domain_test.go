package domain

import (
	"testing"

	"fbufs/internal/machine"
	"fbufs/internal/vm"
)

func newReg() *Registry {
	sys := vm.NewSystem(machine.DecStation5000(), 64, nil)
	return NewRegistry(sys)
}

func TestKernelDomain(t *testing.T) {
	r := newReg()
	k := r.Kernel()
	if k.ID != KernelID || !k.Trusted || k.Dead() {
		t.Fatalf("kernel domain: %+v", k)
	}
	if r.Get(KernelID) != k {
		t.Fatal("Get(0) != kernel")
	}
}

func TestNewDomainsGetDistinctIDs(t *testing.T) {
	r := newReg()
	a := r.New("a")
	b := r.New("b")
	if a.ID == b.ID || a.ID == KernelID {
		t.Fatalf("ids %d %d", a.ID, b.ID)
	}
	if a.Trusted {
		t.Fatal("user domain trusted")
	}
	if a.AS == b.AS || a.AS.ASID == b.AS.ASID {
		t.Fatal("domains share an address space")
	}
	if r.Live() != 3 {
		t.Fatalf("live %d", r.Live())
	}
}

func TestTerminateRunsHooksThenDestroys(t *testing.T) {
	r := newReg()
	d := r.New("victim")
	fn, _ := d.AS.Sys.Mem.Alloc()
	d.AS.MapOwned(0x1000, fn, vm.ReadWrite)

	order := []string{}
	d.OnDeath(func(dd *Domain) {
		order = append(order, "hook")
		if dd != d {
			t.Error("hook got wrong domain")
		}
		if dd.AS.MappedPages() == 0 {
			t.Error("address space destroyed before hooks ran")
		}
	})
	r.Terminate(d)
	if len(order) != 1 {
		t.Fatal("hook did not run")
	}
	if !d.Dead() {
		t.Fatal("not dead")
	}
	if d.AS.MappedPages() != 0 {
		t.Fatal("address space survived")
	}
	if r.Live() != 1 {
		t.Fatalf("live %d", r.Live())
	}
	// Idempotent.
	r.Terminate(d)
}

func TestTerminateKernelPanics(t *testing.T) {
	r := newReg()
	defer func() {
		if recover() == nil {
			t.Fatal("terminating kernel did not panic")
		}
	}()
	r.Terminate(r.Kernel())
}

func TestString(t *testing.T) {
	r := newReg()
	d := r.New("app")
	if d.String() != "app(1)" {
		t.Fatalf("String = %q", d.String())
	}
}
