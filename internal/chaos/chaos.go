// Package chaos is the fault-schedule harness: it drives the fbuf facility
// through seed-determined injected failures — allocation droughts, frame
// exhaustion, mapping retries, domain crashes, and lossy/partitioned links
// — and then proves the system converged: every fbuf recovered, no
// physical frame leaked, every payload delivered intact.
//
// Two scenarios cover the two halves of the failure model:
//
//   - RunLocal exercises the memory half on one host: an adaptive
//     transfer facility (fbuf fast path with graceful degradation to the
//     copy path) under allocation faults, plus crash-at-point domain
//     terminations with stranded references (paper section 3.3).
//   - RunNet exercises the network half: two hosts over the SWP transport
//     with per-link loss, corruption, duplication, reordering, and a timed
//     partition that exponential backoff must ride out.
//
// Both are deterministic functions of the seed: same seed, same report,
// byte for byte. The fbsan sanitizer is always enabled; any violation is
// returned as an error (the CLI exits non-zero).
package chaos

import (
	"bytes"
	"fmt"
	"strings"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/faults"
	"fbufs/internal/machine"
	"fbufs/internal/netsim"
	"fbufs/internal/obs"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xfer"
)

// allPoints enumerates the fault points the local scenario drives.
var allPoints = []faults.Point{
	faults.FrameAlloc, faults.MapBuild, faults.ChunkGrant,
	faults.PathAlloc, faults.DomainCrash,
}

// payload returns the deterministic message body for one send.
func payload(seed int64, round, i, n int) []byte {
	p := make([]byte, n)
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(round)*2654435761 + uint64(i)
	for j := range p {
		x = x*6364136223846793005 + 1442695040888963407
		p[j] = byte(x >> 56)
	}
	return p
}

// LocalResult summarizes one RunLocal schedule; Report is the full
// deterministic text.
type LocalResult struct {
	Report               string
	Sends, Crashes       int
	FastHops, CopyHops   uint64
	Episodes, Recoveries uint64
}

// NetResult summarizes one RunNet schedule; Report is the full
// deterministic text.
type NetResult struct {
	Report                          string
	Delivered                       int
	Retransmits, Backoffs, CRCDrops uint64
}

// RunLocal runs the single-host fault schedule for the seed and returns a
// deterministic report. A non-nil error means a robustness violation: a
// corrupted payload, a failed invariant or convergence check, a leaked
// frame, or a missing degradation/recovery episode.
func RunLocal(seed int64) (LocalResult, error) {
	const (
		rounds        = 6
		sendsPerRound = 40
		frames        = 2048
		msgBytes      = 2 * machine.PageSize
	)

	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), frames, vm.ClockSink{Clock: clk})
	plane := faults.NewPlane(seed)
	sys.FaultPlane = plane
	o := obs.New(4096)
	o.SetNow(clk.Now)
	sys.Obs = o
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	mgr.EnableSanitizer()
	baseline := sys.Mem.Allocated()

	var violations []string
	fail := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	clearRates := func() {
		for _, pt := range allPoints {
			plane.SetRate(pt, 0)
		}
	}
	// Background rates: frequent enough that every schedule sees droughts,
	// low enough that progress is the common case.
	setRates := func() {
		plane.SetRate(faults.FrameAlloc, 15000)
		plane.SetRate(faults.MapBuild, 20000)
		plane.SetRate(faults.ChunkGrant, 10000)
		plane.SetRate(faults.PathAlloc, 25000)
		plane.SetRate(faults.DomainCrash, 400000)
	}

	var totals struct {
		sends, crashes     int
		stats              xfer.AdaptiveStats
		stragglersReleased int
	}

	for r := 0; r < rounds && len(violations) == 0; r++ {
		clearRates() // facility setup is not a fault target
		src := reg.New(fmt.Sprintf("src%d", r))
		dst := reg.New(fmt.Sprintf("dst%d", r))
		a, err := xfer.NewAdaptive(mgr, src, dst, core.CachedVolatile(), msgBytes)
		if err != nil {
			fail("round %d: setup: %v", r, err)
			break
		}
		a.RetryEvery = 3

		// Round 0 carries the forced pressure episode: a total allocation
		// drought every seed must degrade through and recover from.
		if r == 0 {
			plane.SetRate(faults.PathAlloc, 1_000_000)
			for i := 0; i < 4; i++ {
				in := payload(seed, r, 1000+i, msgBytes)
				out, err := a.Send(in)
				if err != nil {
					fail("forced drought send %d: %v", i, err)
				} else if !bytes.Equal(out, in) {
					fail("forced drought send %d: payload corrupted", i)
				}
			}
			plane.SetRate(faults.PathAlloc, 0)
			for i := 0; i < 3*a.RetryEvery && a.Degraded(); i++ {
				in := payload(seed, r, 2000+i, msgBytes)
				if _, err := a.Send(in); err != nil {
					fail("post-drought send %d: %v", i, err)
				}
			}
			if a.Degraded() {
				fail("facility did not recover after the forced drought lifted")
			}
		}

		setRates()
		var stragglers []*core.Fbuf
		crashed := false
		for i := 0; i < sendsPerRound && !crashed && len(violations) == 0; i++ {
			in := payload(seed, r, i, msgBytes)
			out, err := a.Send(in)
			if err != nil {
				fail("round %d send %d: %v", r, i, err)
				break
			}
			if !bytes.Equal(out, in) {
				fail("round %d send %d: payload corrupted", r, i)
				break
			}
			totals.sends++
			if i%8 == 7 {
				mgr.DeliverNotices(dst, src)
				mgr.DeliverNotices(src, dst)
			}
			if i%10 == 9 {
				mgr.ReclaimIdle(4)
			}
			if i%16 == 15 {
				if err := mgr.CheckInvariants(); err != nil {
					fail("round %d send %d: invariants: %v", r, i, err)
					break
				}
			}
			// Crash roulette from round 1 on: park a live reference in the
			// transfer pipeline first, so a death exercises section 3.3's
			// stranded-reference recovery, not just quiescent teardown.
			if r > 0 && i%12 == 11 {
				fb, err := mgr.AllocUncached(src, 1, core.Uncached())
				if err == nil {
					if err := mgr.Transfer(fb, src, dst); err != nil {
						fail("round %d straggler transfer: %v", r, err)
						break
					}
					stragglers = append(stragglers, fb)
				} else if !core.IsAllocFailure(err) {
					fail("round %d straggler alloc: %v", r, err)
					break
				}
				victim := dst
				if i%24 == 23 {
					victim = src
				}
				if reg.CrashPoint(victim) {
					crashed = true
					totals.crashes++
				}
			}
		}

		// Release straggler references still held by live domains (a crash
		// released the victim's side through the death hook).
		clearRates()
		for _, fb := range stragglers {
			for _, d := range []*domain.Domain{src, dst} {
				if !d.Dead() && fb.HeldBy(d) {
					if err := mgr.Free(fb, d); err != nil {
						fail("round %d straggler free: %v", r, err)
					} else {
						totals.stragglersReleased++
					}
				}
			}
		}
		totals.stats.FastHops += a.Stats.FastHops
		totals.stats.CopyHops += a.Stats.CopyHops
		totals.stats.Episodes += a.Stats.Episodes
		totals.stats.Recoveries += a.Stats.Recoveries
		a.Close()
		if !src.Dead() {
			reg.Terminate(src)
		}
		if !dst.Dead() {
			reg.Terminate(dst)
		}
	}

	// Convergence: everything closed and terminated, so after final notice
	// drains nothing may remain live, queued, or leaked.
	clearRates()
	for mgr.ReclaimIdle(1024) > 0 {
	}
	if err := mgr.CheckConverged(); err != nil {
		fail("convergence: %v", err)
	}
	want := baseline + mgr.EmptyLeafFrames()
	got := sys.Mem.Allocated()
	if got != want {
		fail("frame leak: %d frames allocated, want %d (baseline %d + empty leaf %d)",
			got, want, baseline, mgr.EmptyLeafFrames())
	}
	if totals.stats.Episodes == 0 || totals.stats.Recoveries == 0 {
		fail("no fallback episode was exercised (episodes=%d recoveries=%d)",
			totals.stats.Episodes, totals.stats.Recoveries)
	}
	st := mgr.Snapshot()

	var b strings.Builder
	fmt.Fprintf(&b, "chaos local seed=%d\n", seed)
	fmt.Fprintf(&b, "  sends=%d fast=%d copy=%d episodes=%d recoveries=%d\n",
		totals.sends, totals.stats.FastHops, totals.stats.CopyHops,
		totals.stats.Episodes, totals.stats.Recoveries)
	fmt.Fprintf(&b, "  crashes=%d stragglers_released=%d alloc_failures=%d frames_reclaimed=%d map_retries=%d\n",
		totals.crashes, totals.stragglersReleased, st.AllocFailures, st.FramesReclaimed, sys.MapRetries)
	fmt.Fprintf(&b, "  frames: baseline=%d final=%d empty_leaf=%d\n", baseline, got, mgr.EmptyLeafFrames())
	b.WriteString(indent(plane.Report()))
	res := LocalResult{
		Sends:      totals.sends,
		Crashes:    totals.crashes,
		FastHops:   totals.stats.FastHops,
		CopyHops:   totals.stats.CopyHops,
		Episodes:   totals.stats.Episodes,
		Recoveries: totals.stats.Recoveries,
	}
	if len(violations) == 0 {
		b.WriteString("  converged: ok\n")
		res.Report = b.String()
		return res, nil
	}
	for _, v := range violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	res.Report = b.String()
	return res, fmt.Errorf("chaos local seed=%d: %d violations, first: %s",
		seed, len(violations), violations[0])
}

// RunNet runs the two-host lossy-link schedule for the seed: SWP over
// links that drop, corrupt, duplicate, and reorder PDUs, with a timed
// bidirectional partition mid-run. Every message must arrive intact and
// both hosts must converge.
func RunNet(seed int64) (NetResult, error) {
	const (
		count    = 40
		msgBytes = 16 << 10
	)

	plane := faults.NewPlane(seed)
	ab := plane.Link(netsim.LinkAB)
	ab.DropPerMillion = 30000
	ab.CorruptPerMillion = 15000
	ab.DupPerMillion = 10000
	ab.ReorderPerMillion = 15000
	ba := plane.Link(netsim.LinkBA)
	ba.DropPerMillion = 20000
	ba.DupPerMillion = 5000
	// A hard bidirectional partition early in the run; SWP's backoff must
	// ride it out and resynchronize.
	ab.AddPartition(simtime.MS(8), simtime.MS(18))
	ba.AddPartition(simtime.MS(8), simtime.MS(18))

	cfg := netsim.Config{
		Opts:     core.CachedVolatile(),
		PDUBytes: 16 << 10,
		MsgBytes: msgBytes,
		Count:    count,
		Window:   8,
		UseSWP:   true,
		Verify:   true,
		Faults:   plane,
		Frames:   8192,
	}
	e, err := netsim.NewE2E(cfg)
	if err != nil {
		return NetResult{}, fmt.Errorf("chaos net seed=%d: setup: %v", seed, err)
	}
	e.A.SWP.SeedJitter(uint64(seed)*2654435761 + 1)
	e.B.SWP.SeedJitter(uint64(seed)*40503 + 2)

	var violations []string
	fail := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	res, err := e.Run()
	if err != nil {
		fail("run: %v", err)
	} else {
		if res.Delivered != count {
			fail("delivered %d of %d messages", res.Delivered, count)
		}
		if e.B.Test.VerifyFailures != 0 {
			fail("%d payload verification failures", e.B.Test.VerifyFailures)
		}
		if want := uint64(count * msgBytes); e.B.Test.ReceivedBytes != want {
			fail("received %d bytes, want %d", e.B.Test.ReceivedBytes, want)
		}
		if e.A.SWP.Retransmits == 0 {
			fail("lossy partitioned link produced zero retransmissions")
		}
	}

	// Tear both stacks down, drain cross-domain notices, then check
	// convergence: nothing live, nothing queued, nothing leaked.
	for _, h := range []*netsim.Host{e.A, e.B} {
		if err := h.Shutdown(); err != nil {
			fail("host %s: shutdown: %v", h.Name, err)
			continue
		}
		doms := h.Reg.All()
		for _, replier := range doms {
			for _, caller := range doms {
				if replier != caller && !replier.Dead() && !caller.Dead() {
					h.Mgr.DeliverNotices(replier, caller)
				}
			}
		}
		if n := h.SWP.InflightCount(); n > 0 {
			fail("host %s: %d SWP messages still unacknowledged", h.Name, n)
		}
		if err := h.Mgr.CheckConverged(); err != nil {
			fail("host %s: %v", h.Name, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "chaos net seed=%d\n", seed)
	if err == nil {
		fmt.Fprintf(&b, "  delivered=%d/%d bytes=%d verify_failures=%d elapsed_us=%.0f\n",
			res.Delivered, count, e.B.Test.ReceivedBytes, e.B.Test.VerifyFailures,
			res.Elapsed.Microseconds())
	}
	fmt.Fprintf(&b, "  swp A: sent=%d retransmits=%d backoffs=%d  B: acks=%d\n",
		e.A.SWP.Sent, e.A.SWP.Retransmits, e.A.SWP.Backoffs, e.B.SWP.AcksSent)
	fmt.Fprintf(&b, "  crc_drops A=%d B=%d\n", e.A.Driver.CRCDrops, e.B.Driver.CRCDrops)
	b.WriteString(indent(plane.Report()))
	nres := NetResult{
		Delivered:   res.Delivered,
		Retransmits: e.A.SWP.Retransmits,
		Backoffs:    e.A.SWP.Backoffs,
		CRCDrops:    e.A.Driver.CRCDrops + e.B.Driver.CRCDrops,
	}
	if len(violations) == 0 {
		b.WriteString("  converged: ok\n")
		nres.Report = b.String()
		return nres, nil
	}
	for _, v := range violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	nres.Report = b.String()
	return nres, fmt.Errorf("chaos net seed=%d: %d violations, first: %s",
		seed, len(violations), violations[0])
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
