package chaos

import (
	"strings"
	"testing"
)

// The CI seed matrix: every one of these must converge with zero
// violations (and does, deterministically — see the determinism tests).
var ciSeeds = []int64{1, 2, 3, 7, 42}

func TestRunLocalSeeds(t *testing.T) {
	for _, seed := range ciSeeds {
		res, err := RunLocal(seed)
		if err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, res.Report)
			continue
		}
		if !strings.Contains(res.Report, "converged: ok") {
			t.Errorf("seed %d: no convergence line:\n%s", seed, res.Report)
		}
		if res.Episodes == 0 || res.Recoveries == 0 {
			t.Errorf("seed %d: no fallback episode:\n%s", seed, res.Report)
		}
	}
}

func TestRunNetSeeds(t *testing.T) {
	for _, seed := range ciSeeds {
		res, err := RunNet(seed)
		if err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, res.Report)
			continue
		}
		if !strings.Contains(res.Report, "converged: ok") {
			t.Errorf("seed %d: no convergence line:\n%s", seed, res.Report)
		}
	}
}

// TestRunLocalDeterministic: same seed, byte-identical report.
func TestRunLocalDeterministic(t *testing.T) {
	a, errA := RunLocal(13)
	b, errB := RunLocal(13)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error divergence: %v vs %v", errA, errB)
	}
	if a != b {
		t.Fatalf("report divergence:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Report, b.Report)
	}
}

func TestRunNetDeterministic(t *testing.T) {
	a, errA := RunNet(13)
	b, errB := RunNet(13)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error divergence: %v vs %v", errA, errB)
	}
	if a != b {
		t.Fatalf("report divergence:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Report, b.Report)
	}
}

// Different seeds should explore different schedules (not a correctness
// requirement per se, but a dead RNG would silently gut the whole plane).
func TestSeedsDiverge(t *testing.T) {
	a, _ := RunLocal(1)
	b, _ := RunLocal(2)
	if a.Report == b.Report {
		t.Fatal("seeds 1 and 2 produced identical local reports")
	}
}
