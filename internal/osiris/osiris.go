// Package osiris models the Bellcore Osiris ATM network adapter used in
// the paper's end-to-end experiments, attached to a DecStation's
// TurboChannel and connected host-to-host by a null modem (622 Mb/s link,
// 516 Mb/s net of cell overhead).
//
// The board is a bus master: it segments outgoing PDUs into ATM cells and
// DMAs them over the TurboChannel (one DMA start per cell payload — the
// hardware property that caps Osiris at 367 Mb/s despite the bus's
// 800 Mb/s peak; CPU/memory contention further reduces effective I/O to
// 285 Mb/s). On receive it reassembles cells into a buffer selected by the
// cell's VCI: the driver keeps preallocated *cached* fbufs for the 16 most
// recently used data paths and a queue of uncached fbufs for everything
// else (paper section 5.2).
//
// Timing (bus occupancy, link serialization, interrupt scheduling) is
// orchestrated by package netsim; this package provides the driver layer,
// the VCI table, and the cell arithmetic.
package osiris

import (
	"fmt"
	"hash/crc32"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
	"fbufs/internal/xkernel"
)

// VCI identifies a virtual circuit.
type VCI uint32

// MaxCachedVCIs is the size of the driver's per-path preallocation table.
const MaxCachedVCIs = 16

// TxPDU is an outgoing PDU handed to the board: its wire bytes (gathered
// by DMA from the message's fbufs) and the CPU-time offset within the
// current task at which the protocol stack finished preparing it — the
// netsim host uses the offset to start each PDU's DMA as soon as it is
// ready, pipelining fragmentation with transmission.
type TxPDU struct {
	VCI       VCI
	Data      []byte
	CPUOffset simtime.Duration
	// CRC is the AAL5-trailer-style checksum the adapter computes over the
	// wire bytes during transmit DMA; the receiving adapter recomputes it
	// (ReceiveChecked) and discards corrupted PDUs. Computed in hardware,
	// so no CPU cost is charged.
	CRC uint32
	// Trace is the transfer trace the PDU belongs to (0: untraced). It
	// crosses the wire so the receiving host's spans land in the same
	// trace — the cross-host leg of the latency attribution.
	Trace uint64
}

// Driver is the Osiris device driver: the bottom layer of the protocol
// graph, running in the kernel domain.
type Driver struct {
	xkernel.Base
	env *xkernel.Env

	// TxVCI stamps outgoing PDUs.
	TxVCI VCI

	// AutoInstall makes the driver add a cached path for a previously
	// unseen VCI after its first (uncached) PDU, keeping the table at the
	// 16 most recently used circuits. On by default, as in the paper.
	AutoInstall bool

	// Rings opts the driver's cross-domain links into the shared-memory
	// ring data plane (xkernel.RingCapable).
	Rings bool

	// RxBatch, when positive, keeps up to RxBatch preallocated reassembly
	// fbufs per cached circuit, refilled from the path in one AllocBatch
	// call — the driver pays the allocator lock once per batch instead of
	// once per PDU, the preallocation discipline of section 5.2 taken to
	// its batched conclusion. Zero (the default) allocates per PDU,
	// preserving the facility's historical event and fault schedules
	// exactly. Stashes drain through FreeBatch on eviction and Close.
	RxBatch int

	// CPUOffset reports metered CPU time consumed so far in the current
	// task (set by the netsim host); zero when unset.
	CPUOffset func() simtime.Duration

	txq []TxPDU

	// VCI table: cached reassembly paths, LRU-ordered (front = oldest).
	vcis    map[VCI]*vciEntry
	lru     []VCI
	rxOpts  core.Options
	rxDoms  []*domain.Domain // receive data path, kernel first
	rxPages int              // reassembly fbuf size in pages
	uctx    *aggregate.Ctx   // lazy, for unknown-VCI (uncached) buffers

	// Stats
	TxPDUs, RxPDUs   uint64
	RxCachedAllocs   uint64
	RxUncachedAllocs uint64
	VCIEvictions     uint64
	// CRCDrops counts PDUs the adapter discarded on a ReceiveChecked CRC
	// mismatch (corruption on the link).
	CRCDrops uint64
}

type vciEntry struct {
	path *core.DataPath
	ctx  *aggregate.Ctx
	// stash holds live, preallocated reassembly fbufs (RxBatch mode).
	stash []*core.Fbuf
}

// rxAlloc returns the next reassembly fbuf for a cached circuit: straight
// from the path in the default mode, from the circuit's batched stash
// (refilling it with one AllocBatch when empty) in RxBatch mode.
func (d *Driver) rxAlloc(e *vciEntry) (*core.Fbuf, error) {
	if d.RxBatch <= 0 {
		return e.path.Alloc()
	}
	if len(e.stash) == 0 {
		bufs := make([]*core.Fbuf, d.RxBatch)
		n, err := e.path.AllocBatch(bufs)
		if n == 0 {
			return nil, err
		}
		e.stash = bufs[:n]
	}
	// Pop in allocation order so PDU-to-buffer assignment matches a
	// per-PDU allocation sequence.
	f := e.stash[0]
	e.stash = e.stash[1:]
	return f, nil
}

// drainStash returns a circuit's preallocated fbufs to its path in one
// batched free (eviction and driver shutdown).
func (d *Driver) drainStash(e *vciEntry) error {
	if len(e.stash) == 0 {
		return nil
	}
	err := d.env.Mgr.FreeBatch(e.stash, d.Dom())
	e.stash = nil
	return err
}

// NewDriver creates the driver in the kernel domain. rxDoms is the
// sequence of domains incoming data traverses (kernel first); rxPages
// sizes the reassembly buffers (ceil of max wire PDU).
func NewDriver(env *xkernel.Env, opts core.Options, rxDoms []*domain.Domain, rxPages int) *Driver {
	d := &Driver{
		Base:        xkernel.NewBase("osiris", env.Reg.Kernel()),
		env:         env,
		vcis:        make(map[VCI]*vciEntry),
		rxOpts:      opts,
		rxDoms:      rxDoms,
		rxPages:     rxPages,
		AutoInstall: true,
		CPUOffset:   func() simtime.Duration { return 0 },
	}
	return d
}

// RingEligible implements xkernel.RingCapable.
func (d *Driver) RingEligible() bool { return d.Rings }

// Push gathers the PDU's bytes by DMA (no CPU data touching: the board is
// a bus master reading the fbufs' frames directly) and queues it for
// transmission, then releases the kernel's buffer references.
func (d *Driver) Push(m *aggregate.Msg) error {
	o := d.env.Sys.Obs
	if o != nil {
		o.SpanBegin(span.StageDMA, "osiris", int(d.Dom().ID)+d.env.Sys.TraceBase, int64(m.Len()))
		defer o.SpanEnd()
	}
	d.env.Sys.Sink().Charge(d.env.Sys.Cost.DriverPerPDU)
	data := make([]byte, 0, m.Len())
	for _, s := range m.Segs() {
		if s.F == nil {
			// Absence of data (volatile dangling reference): wire
			// carries zeros.
			data = append(data, make([]byte, s.N)...)
			continue
		}
		chunk := make([]byte, s.N)
		if err := s.F.DMARead(int(s.VA-s.F.Base), chunk); err != nil {
			return err
		}
		data = append(data, chunk...)
	}
	d.txq = append(d.txq, TxPDU{
		VCI: d.TxVCI, Data: data, CPUOffset: d.CPUOffset(),
		CRC: crc32.ChecksumIEEE(data), Trace: o.CurrentTrace(),
	})
	d.TxPDUs++
	if o != nil {
		o.Emit(obs.EvDMAStart, int(d.Dom().ID)+d.env.Sys.TraceBase, obs.NoTrack, 0, int64(len(data)))
	}
	return m.Free(d.Dom())
}

// TakeTxQueue drains the transmit queue (the netsim host flushes it after
// each CPU task).
func (d *Driver) TakeTxQueue() []TxPDU {
	q := d.txq
	d.txq = nil
	return q
}

// Deliver is invalid: nothing is below the driver.
func (d *Driver) Deliver(m *aggregate.Msg) error {
	return fmt.Errorf("osiris: driver has no layer below")
}

// AddVCI installs a cached per-path reassembly allocator for the circuit,
// evicting the least recently used entry beyond MaxCachedVCIs.
func (d *Driver) AddVCI(v VCI) error {
	if _, ok := d.vcis[v]; ok {
		d.touchVCI(v)
		return nil
	}
	if len(d.lru) >= MaxCachedVCIs {
		victim := d.lru[0]
		d.lru = d.lru[1:]
		e := d.vcis[victim]
		delete(d.vcis, victim)
		if err := d.drainStash(e); err != nil {
			return err
		}
		if err := e.ctx.Close(); err != nil {
			return err
		}
		d.env.Mgr.ClosePath(e.path)
		d.VCIEvictions++
	}
	path, err := d.env.Mgr.NewPath(fmt.Sprintf("vci-%d", v), d.rxOpts, d.rxPages, d.rxDoms...)
	if err != nil {
		return err
	}
	path.SetQuota(32)
	ctx, err := aggregate.NewCtx(d.env.Mgr, path, d.rxOpts.Integrated)
	if err != nil {
		return err
	}
	d.vcis[v] = &vciEntry{path: path, ctx: ctx}
	d.lru = append(d.lru, v)
	return nil
}

func (d *Driver) touchVCI(v VCI) {
	for i, e := range d.lru {
		if e == v {
			d.lru = append(append(d.lru[:i], d.lru[i+1:]...), v)
			return
		}
	}
}

// CachedVCIs returns the number of installed cached circuits.
func (d *Driver) CachedVCIs() int { return len(d.lru) }

// ReceiveChecked is Receive behind the adapter's CRC check: the board
// recomputes the AAL5-style checksum over the reassembled PDU and, on a
// mismatch, discards it without involving the protocol stack — only the
// interrupt is charged. Transports above (SWP) see the corruption as loss
// and retransmit. Callers that model a link able to corrupt bytes (netsim
// with a fault plane) must come through here; Receive itself stays
// CRC-oblivious for callers whose links cannot corrupt.
func (d *Driver) ReceiveChecked(v VCI, data []byte, crc uint32) error {
	if crc32.ChecksumIEEE(data) != crc {
		d.env.Sys.Sink().Charge(d.env.Sys.Cost.InterruptCost)
		d.CRCDrops++
		if o := d.env.Sys.Obs; o != nil {
			o.Emit(obs.EvCRCDrop, int(d.Dom().ID)+d.env.Sys.TraceBase, obs.NoTrack, 0, int64(len(data)))
		}
		return nil
	}
	return d.Receive(v, data)
}

// Receive accepts a fully reassembled wire PDU from the board (the DMA
// into main memory has already been costed on the bus by netsim; here the
// driver charges interrupt and processing time, places the data in an fbuf
// of the VCI's path — or an uncached fbuf for unknown circuits — and
// delivers it up the stack).
func (d *Driver) Receive(v VCI, data []byte) error {
	if o := d.env.Sys.Obs; o != nil {
		o.SpanBegin(span.StageDMA, "osiris", int(d.Dom().ID)+d.env.Sys.TraceBase, int64(len(data)))
		defer o.SpanEnd()
	}
	cost := d.env.Sys.Cost
	d.env.Sys.Sink().Charge(cost.InterruptCost + cost.DriverPerPDU)
	d.RxPDUs++
	if o := d.env.Sys.Obs; o != nil {
		o.Emit(obs.EvDMADone, int(d.Dom().ID)+d.env.Sys.TraceBase, obs.NoTrack, 0, int64(len(data)))
	}
	pages := (len(data) + machine.PageSize - 1) / machine.PageSize
	if pages == 0 {
		pages = 1
	}
	var m *aggregate.Msg
	if e, ok := d.vcis[v]; ok && pages <= e.path.FbufPages() {
		d.touchVCI(v)
		f, err := d.rxAlloc(e)
		if err != nil {
			return err
		}
		if err := f.DMAWrite(0, data); err != nil {
			return err
		}
		m, err = e.ctx.WrapFbuf(f, 0, len(data))
		if err != nil {
			return err
		}
		d.RxCachedAllocs++
	} else {
		opts := d.rxOpts
		opts.Cached = false
		// The board will DMA the whole PDU into the buffer, so only the
		// tail beyond the PDU needs a security clear.
		f, err := d.env.Mgr.AllocUncachedFill(d.Dom(), pages, opts, len(data))
		if err != nil {
			return err
		}
		if err := f.DMAWrite(0, data); err != nil {
			return err
		}
		if d.uctx == nil {
			d.uctx = aggregate.NewUncachedCtx(d.env.Mgr, d.Dom(), opts, 1, opts.Integrated)
		}
		m, err = d.uctx.WrapFbuf(f, 0, len(data))
		if err != nil {
			return err
		}
		d.RxUncachedAllocs++
		// The table tracks the 16 most recently used data paths: traffic
		// on a new circuit earns it a cached allocator (possibly evicting
		// the LRU one). Oversized PDUs stay uncached.
		if d.AutoInstall && pages <= d.rxPages {
			if err := d.AddVCI(v); err != nil {
				return err
			}
		}
	}
	return d.DeliverAbove(m)
}

// Close shuts the driver down: every cached circuit's reassembly context
// and data path is torn down (LRU order, oldest first, so teardown is
// deterministic), as is the uncached context. Used by host shutdown before
// convergence checking.
func (d *Driver) Close() error {
	for _, v := range d.lru {
		e := d.vcis[v]
		delete(d.vcis, v)
		if err := d.drainStash(e); err != nil {
			return err
		}
		if err := e.ctx.Close(); err != nil {
			return err
		}
		d.env.Mgr.ClosePath(e.path)
	}
	d.lru = nil
	if d.uctx != nil {
		if err := d.uctx.Close(); err != nil {
			return err
		}
		d.uctx = nil
	}
	return nil
}

// CellCount returns the number of ATM cells a PDU occupies.
func CellCount(cost *machine.CostTable, bytes int) int {
	p := cost.ATMCellPayload
	n := (bytes + p - 1) / p
	if n == 0 {
		n = 1
	}
	return n
}

// BusTime returns the TurboChannel occupancy to DMA a PDU's cells,
// including memory-contention stalls.
func BusTime(cost *machine.CostTable, bytes int) simtime.Duration {
	return simtime.Duration(CellCount(cost, bytes)) * (cost.BusCellDMA + cost.BusContention)
}

// LinkTime returns the null-modem serialization time for a PDU's cells.
func LinkTime(cost *machine.CostTable, bytes int) simtime.Duration {
	return simtime.Duration(CellCount(cost, bytes)) * cost.LinkCell
}
