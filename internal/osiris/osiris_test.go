package osiris

import (
	"bytes"
	"fmt"
	"testing"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
	"fbufs/internal/xkernel"
)

type rig struct {
	clk *simtime.Clock
	sys *vm.System
	reg *domain.Registry
	mgr *core.Manager
	env *xkernel.Env
	app *domain.Domain
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), 8192, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	env := xkernel.NewEnv(sys, mgr, reg)
	r := &rig{clk: clk, sys: sys, reg: reg, mgr: mgr, env: env}
	r.app = reg.New("app")
	mgr.AttachDomain(r.app)
	return r
}

// sink records delivered messages.
type sink struct {
	xkernel.Base
	dom  *domain.Domain
	got  [][]byte
	errs []error
}

func (s *sink) Deliver(m *aggregate.Msg) error {
	data, err := m.ReadAll(s.dom)
	if err != nil {
		return err
	}
	s.got = append(s.got, data)
	return m.Free(s.dom)
}
func (s *sink) Push(m *aggregate.Msg) error { return fmt.Errorf("sink push") }

func newDriver(t *testing.T, r *rig) (*Driver, *sink) {
	t.Helper()
	d := NewDriver(r.env, core.CachedVolatile(), []*domain.Domain{r.reg.Kernel(), r.app}, 5)
	sk := &sink{Base: xkernel.NewBase("sink", r.reg.Kernel()), dom: r.reg.Kernel()}
	d.SetAbove(sk)
	return d, sk
}

func TestTxGathersAndFrees(t *testing.T) {
	r := newRig(t)
	d, _ := newDriver(t, r)
	d.TxVCI = 7

	p, err := r.mgr.NewPath("tx", core.CachedVolatile(), 4, r.reg.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := aggregate.NewCtx(r.mgr, p, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 9000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	m, err := ctx.NewData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Push(m); err != nil {
		t.Fatal(err)
	}
	q := d.TakeTxQueue()
	if len(q) != 1 {
		t.Fatalf("queued %d PDUs", len(q))
	}
	if q[0].VCI != 7 {
		t.Fatalf("VCI %d", q[0].VCI)
	}
	if !bytes.Equal(q[0].Data, payload) {
		t.Fatal("gathered wire bytes differ from message")
	}
	// The driver freed the kernel's references; buffers recycled.
	if err := r.mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(d.TakeTxQueue()) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRxCachedVCI(t *testing.T) {
	r := newRig(t)
	d, sk := newDriver(t, r)
	if err := d.AddVCI(5); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 7000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := d.Receive(5, data); err != nil {
		t.Fatal(err)
	}
	if len(sk.got) != 1 || !bytes.Equal(sk.got[0], data) {
		t.Fatal("delivered PDU corrupt")
	}
	if d.RxCachedAllocs != 1 || d.RxUncachedAllocs != 0 {
		t.Fatalf("alloc stats: %d cached, %d uncached", d.RxCachedAllocs, d.RxUncachedAllocs)
	}
	// Steady state: second PDU reuses the recycled reassembly buffer.
	if err := d.Receive(5, data); err != nil {
		t.Fatal(err)
	}
	if r.mgr.Snapshot().CacheHits == 0 {
		t.Fatal("no reassembly-buffer cache hit")
	}
}

func TestRxUnknownVCIUsesUncached(t *testing.T) {
	r := newRig(t)
	d, sk := newDriver(t, r)
	if err := d.Receive(99, []byte("mystery circuit")); err != nil {
		t.Fatal(err)
	}
	if d.RxUncachedAllocs != 1 {
		t.Fatalf("uncached allocs %d", d.RxUncachedAllocs)
	}
	if len(sk.got) != 1 || string(sk.got[0]) != "mystery circuit" {
		t.Fatal("uncached delivery corrupt")
	}
}

func TestVCITableLRUEviction(t *testing.T) {
	r := newRig(t)
	d, _ := newDriver(t, r)
	for i := 0; i < MaxCachedVCIs; i++ {
		if err := d.AddVCI(VCI(i)); err != nil {
			t.Fatal(err)
		}
	}
	if d.CachedVCIs() != MaxCachedVCIs {
		t.Fatalf("cached VCIs %d", d.CachedVCIs())
	}
	// Touch VCI 0 so it is most recently used; adding one more must evict
	// VCI 1, not 0.
	if err := d.AddVCI(0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddVCI(VCI(MaxCachedVCIs)); err != nil {
		t.Fatal(err)
	}
	if d.CachedVCIs() != MaxCachedVCIs {
		t.Fatalf("cached VCIs %d after eviction", d.CachedVCIs())
	}
	if d.VCIEvictions != 1 {
		t.Fatalf("evictions %d", d.VCIEvictions)
	}
	// PDUs for VCI 0 still take the cached path; VCI 1 falls back.
	if err := d.Receive(0, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if d.RxCachedAllocs != 1 {
		t.Fatal("VCI 0 lost its cached path")
	}
	if err := d.Receive(1, []byte("evicted")); err != nil {
		t.Fatal(err)
	}
	if d.RxUncachedAllocs != 1 {
		t.Fatal("evicted VCI 1 did not fall back to uncached")
	}
}

func TestOversizedPDUFallsBackToUncached(t *testing.T) {
	r := newRig(t)
	d, sk := newDriver(t, r) // cached reassembly buffers: 5 pages
	if err := d.AddVCI(5); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 6*machine.PageSize)
	if err := d.Receive(5, big); err != nil {
		t.Fatal(err)
	}
	if d.RxUncachedAllocs != 1 {
		t.Fatal("oversized PDU should use the uncached queue")
	}
	if len(sk.got) != 1 || len(sk.got[0]) != len(big) {
		t.Fatal("oversized delivery corrupt")
	}
}

func TestCellArithmetic(t *testing.T) {
	cost := machine.DecStation5000()
	if n := CellCount(cost, 48); n != 1 {
		t.Fatalf("48B = %d cells", n)
	}
	if n := CellCount(cost, 49); n != 2 {
		t.Fatalf("49B = %d cells", n)
	}
	if n := CellCount(cost, 0); n != 1 {
		t.Fatalf("0B = %d cells", n)
	}
	// 16KB PDU over the contended bus sustains ~285 Mb/s.
	bytes := 16 * 1024
	bt := BusTime(cost, bytes)
	rate := float64(bytes) * 8 / 1e6 / bt.Seconds()
	if rate < 280 || rate > 290 {
		t.Fatalf("bus rate %.0f Mb/s, want ~285", rate)
	}
	// And the link is faster than the contended bus (never the bottleneck).
	if LinkTime(cost, bytes) >= bt {
		t.Fatal("link slower than bus")
	}
}

func TestReceiveChargesInterruptAndDriver(t *testing.T) {
	r := newRig(t)
	d, _ := newDriver(t, r)
	if err := d.AddVCI(5); err != nil {
		t.Fatal(err)
	}
	// Warm up so allocation costs settle.
	if err := d.Receive(5, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	start := r.clk.Now()
	if err := d.Receive(5, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	min := r.sys.Cost.InterruptCost + r.sys.Cost.DriverPerPDU
	if got := r.clk.Now() - start; got < min {
		t.Fatalf("receive charged %v, want at least %v", got, min)
	}
}
