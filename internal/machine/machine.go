// Package machine defines the simulated hardware profile: the calibrated
// cost table (microseconds per primitive VM, IPC, and I/O operation) and the
// TLB model. The default profile, DecStation5000, is calibrated against the
// measurements reported in the fbufs paper for a DecStation 5000/200
// (25 MHz MIPS R3000): page clear = 57 us, Table 1 per-page transfer costs of
// 3/21/29 us, DASH-style remap at 22 us ping-pong and 42-99 us one-way, Mach
// IPC latency fitting Figure 3, and the Osiris/TurboChannel I/O ceilings of
// Figures 5-6 (367 Mb/s DMA-startup bound, 285 Mb/s with memory contention,
// 516 Mb/s net link bandwidth).
//
// Costs are data, not code: every mechanism in this repository charges costs
// by name from a CostTable, so ablations and sensitivity studies swap tables
// without touching mechanism code.
package machine

import (
	"sync"

	"fbufs/internal/simtime"
)

// PageSize is the virtual-memory page size in bytes. The paper's arithmetic
// (asymptotic throughput = 4096*8 bits / per-page cost) pins this at 4 KB.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// CostTable holds the per-operation costs, in simulated microseconds unless
// stated otherwise. The emergent composite costs (Table 1 rows, remap costs)
// are asserted by the calibration tests in internal/bench.
type CostTable struct {
	// --- Virtual memory primitives ---

	// TLBMiss is the software-refill cost charged on the first touch of a
	// page through a given address space since the page's TLB entry was
	// last invalidated. (The R3000 handles TLB misses in software.)
	TLBMiss simtime.Duration

	// PTEMap is the cost to establish one page mapping: update the
	// machine-independent map and write the physical page table entry.
	// Adding a mapping needs no TLB shootdown.
	PTEMap simtime.Duration

	// PTEUnmap is the cost to remove one page mapping. Invalidation uses a
	// lazy ASID-flush discipline, so it is cheaper than a protection
	// downgrade, which must be visible immediately.
	PTEUnmap simtime.Duration

	// ProtChange is the cost to change the protection on one mapped page
	// *and* make the change globally visible (TLB/cache consistency
	// actions). This is the dominant per-page cost of non-volatile fbufs.
	ProtChange simtime.Duration

	// FrameAlloc / FrameFree are per-page physical memory management costs.
	FrameAlloc simtime.Duration
	FrameFree  simtime.Duration

	// PageClear is the cost to zero-fill one page (57 us on the
	// DecStation, per the paper). Charged when a page is handed to a
	// domain that must not see its previous contents.
	PageClear simtime.Duration

	// PageCopy is the cost to copy one page once (one direction). Mach's
	// copy path for small messages is copyin + copyout = 2 * PageCopy.
	PageCopy simtime.Duration

	// FaultTrap is the fixed cost of taking a page fault: trap entry,
	// lookup in VM data structures, trap exit. The handler's work (copy,
	// PTE fix) is charged separately.
	FaultTrap simtime.Duration

	// VAAlloc / VAFree are per-fbuf costs to find/reserve and release a
	// virtual address range.
	VAAlloc simtime.Duration
	VAFree  simtime.Duration

	// RemapBookkeep is the per-page high-level (machine-independent map)
	// bookkeeping charged by the standalone remap facility, which must
	// track transferable regions on both sides. The fbuf region's
	// restricted layout eliminates this cost for fbufs.
	RemapBookkeep simtime.Duration

	// COWMark is the per-page cost for Mach's copy-on-write transfer to
	// mark a page COW in the high-level map. The physical page tables are
	// updated lazily, which is why each transfer later takes two faults.
	COWMark simtime.Duration

	// --- Control transfer ---

	// IPCLatency is the end-to-end latency of a null cross-domain RPC
	// (Mach IPC plus proxy overhead).
	IPCLatency simtime.Duration

	// IPCPerFbuf is the per-fbuf-descriptor marshalling cost for transfers
	// that pass lists of fbufs through the kernel (eliminated by the
	// integrated buffer management optimization).
	IPCPerFbuf simtime.Duration

	// KernelCall is the cost of a trap into the kernel and back without a
	// full domain switch (used by non-volatile secure/restore requests and
	// uncached allocation when the local allocator needs a new chunk).
	KernelCall simtime.Duration

	// --- Protocol processing (x-kernel on the DecStation) ---

	// UDPPerMsg is UDP processing (header build/parse, demux) per message.
	UDPPerMsg simtime.Duration
	// ChecksumPerPage is the CPU cost to checksum one page of data (the
	// ones'-complement sum is load/add bound; comparable to a one-way
	// page copy on the R3000). Charged only when checksumming is on.
	ChecksumPerPage simtime.Duration
	// IPPerPDU is IP processing per PDU (fragment or whole datagram).
	IPPerPDU simtime.Duration
	// IPFragSetup is the fixed per-message cost of entering the
	// fragmentation path (present only when a message must be fragmented;
	// this produces the Figure 4 single-domain anomaly at 4 KB).
	IPFragSetup simtime.Duration
	// IPReassPerPDU is reassembly cost per arriving fragment.
	IPReassPerPDU simtime.Duration
	// DriverPerPDU is device-driver processing per PDU (send or receive),
	// excluding DMA time, which is charged to the bus.
	DriverPerPDU simtime.Duration
	// InterruptCost is the fixed cost of taking a device interrupt.
	InterruptCost simtime.Duration

	// --- Osiris / TurboChannel I/O model ---

	// ATMCellPayload is bytes of payload per ATM cell (AAL: 48).
	ATMCellPayload int
	// BusCellDMA is the bus occupancy per cell DMA: payload transfer time
	// at TurboChannel peak plus DMA startup. The paper: peak 800 Mb/s,
	// but per-cell startup limits Osiris to 367 Mb/s.
	BusCellDMA simtime.Duration
	// BusContention is additional per-cell stall when the host CPU
	// competes for memory (reduces effective I/O to 285 Mb/s in the
	// paper). Set to 0 to model an idle-CPU bus (the 367 Mb/s figure).
	BusContention simtime.Duration
	// LinkCell is the link (622 Mb/s OC-12, 516 Mb/s net of cell
	// overhead) serialization time per cell.
	LinkCell simtime.Duration
	// LinkPropagation is the null-modem propagation delay.
	LinkPropagation simtime.Duration

	// TextDuplicationPenalty is the extra per-domain-crossing cost charged
	// when a third protection domain joins a data path and the system has
	// no shared libraries: duplicated x-kernel text thrashes the
	// instruction cache and TLB (paper section 4, Figure 5 discussion).
	TextDuplicationPenalty simtime.Duration
}

// DecStation5000 returns the calibrated DecStation 5000/200 cost table.
//
// Derivation of the anchored composites (single domain crossing, per page,
// steady state; see internal/bench calibration tests):
//
//	cached+volatile: 2*TLBMiss                                  =  3 us
//	volatile (uncached): FrameAlloc + 2*PTEMap + 2*PTEUnmap +
//	                     FrameFree + 2*TLBMiss                  = 21 us
//	cached (non-volatile): 2*ProtChange + 2*TLBMiss             = 29 us
//	plain fbufs (uncached, non-volatile): 21 + ProtChange       = 34 us
//	  (no restore ProtChange: an uncached fbuf is destroyed at free)
//	remap ping-pong: ProtChange + PTEMap + RemapBookkeep + miss = 22 us
//	remap one-way (no clear): ping-pong + alloc/free path       = 42 us
//	remap one-way (full clear): + PageClear                     = 99 us
//	Mach COW: COWMark*2 + 2 faults + PTE fixes + unmap + misses = 70 us
//	Copy (copyin+copyout): 2*PageCopy + 2*TLBMiss               = 143 us
func DecStation5000() *CostTable {
	us := simtime.US
	return &CostTable{
		TLBMiss:    1500, // 1.5 us software refill; two touches/page = 3 us
		PTEMap:     us(4),
		PTEUnmap:   us(3),
		ProtChange: us(13),
		FrameAlloc: us(2),
		FrameFree:  us(2),
		PageClear:  us(57),
		PageCopy:   us(70),
		FaultTrap:  us(25),
		VAAlloc:    us(10),
		VAFree:     us(8),

		RemapBookkeep: us(2),
		COWMark:       us(2),

		IPCLatency: us(110),
		IPCPerFbuf: us(5),
		KernelCall: us(20),

		UDPPerMsg:       us(60),
		ChecksumPerPage: us(50),
		IPPerPDU:        us(40),
		IPFragSetup:     us(450),
		IPReassPerPDU:   us(50),
		DriverPerPDU:    us(50),
		InterruptCost:   us(25),

		ATMCellPayload:  48,
		BusCellDMA:      1046, // ns: 48B*8b / 367 Mb/s
		BusContention:   301,  // ns: total 1347 ns/cell -> 285 Mb/s
		LinkCell:        744,  // ns: 48B*8b / 516 Mb/s net
		LinkPropagation: us(2),

		TextDuplicationPenalty: us(60),
	}
}

// FutureCPU returns a hypothetical profile testing the paper's section
// 2.2.1 prediction: "the improvement from 208 us/page (Sun 3/50) to
// 22 us/page (DEC 5000/200) might be taken as evidence that page remapping
// will continue to become faster at the same rate as processors become
// faster. We doubt that this extrapolation is correct ... the CPU was
// stalled waiting for cache fills approximately half of the time. The
// operation is likely to become more memory bound as the gap between CPU
// and memory speeds widens."
//
// The profile scales pure-CPU work by cpuSpeedup while memory-bound work
// (page clears, page copies, the memory-stall half of TLB consistency
// actions) stays fixed, and emits the table for the remap-vs-fbufs gap
// ablation. With a 10x CPU, copying and remapping improve far less than
// 10x, while the cached/volatile fbuf path — which touches almost no
// memory beyond the payload — keeps pace.
func FutureCPU(cpuSpeedup int64) *CostTable {
	c := DecStation5000()
	scale := func(d simtime.Duration) simtime.Duration {
		v := int64(d) / cpuSpeedup
		if v < 100 { // floor: 0.1 us of irreducible instruction work
			v = 100
		}
		return simtime.Duration(v)
	}
	// Memory-bound halves stay; CPU-bound halves scale. The paper
	// measured the remap path ~50% memory-stalled; we apply that split
	// to the TLB/cache-consistency operations and keep pure memory
	// operations (clear, copy) fixed.
	half := func(d simtime.Duration) simtime.Duration { return d/2 + scale(d/2) }

	c.TLBMiss = half(c.TLBMiss)
	c.PTEMap = scale(c.PTEMap)
	c.PTEUnmap = scale(c.PTEUnmap)
	c.ProtChange = half(c.ProtChange) // shootdown waits on memory
	c.FrameAlloc = scale(c.FrameAlloc)
	c.FrameFree = scale(c.FrameFree)
	// PageClear and PageCopy are memory-bandwidth bound: unchanged.
	c.FaultTrap = scale(c.FaultTrap)
	c.VAAlloc = scale(c.VAAlloc)
	c.VAFree = scale(c.VAFree)
	c.RemapBookkeep = scale(c.RemapBookkeep)
	c.COWMark = scale(c.COWMark)
	c.IPCLatency = half(c.IPCLatency)
	c.IPCPerFbuf = scale(c.IPCPerFbuf)
	c.KernelCall = scale(c.KernelCall)
	c.UDPPerMsg = scale(c.UDPPerMsg)
	c.IPPerPDU = scale(c.IPPerPDU)
	c.IPFragSetup = scale(c.IPFragSetup)
	c.IPReassPerPDU = scale(c.IPReassPerPDU)
	c.DriverPerPDU = scale(c.DriverPerPDU)
	c.InterruptCost = scale(c.InterruptCost)
	return c
}

// TLBEntries is the number of TLB entries on the R3000.
const TLBEntries = 64

// TLB models an ASID-tagged, software-refilled TLB. The model is
// deliberately simple: it tracks which (asid, vpn) pairs are present and
// charges CostTable.TLBMiss on absence. Capacity eviction is FIFO, which is
// close enough to the random replacement of the R3000 for the locality
// effects the paper relies on (cached fbufs keep their entries hot; a third
// domain's duplicated text evicts them).
//
// The TLB is shared hardware state, so its methods are mutex-guarded; in
// the single-threaded default mode the lock is uncontended and the model's
// hit/miss sequence is unchanged.
type TLB struct {
	mu       sync.Mutex
	capacity int
	present  map[tlbKey]int // value: slot index for eviction bookkeeping
	order    []tlbKey       // FIFO of resident keys
	misses   uint64
	hits     uint64
}

type tlbKey struct {
	asid int
	vpn  uint64
}

// NewTLB creates a TLB with the given number of entries (0 means
// TLBEntries).
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = TLBEntries
	}
	return &TLB{capacity: capacity, present: make(map[tlbKey]int)}
}

// Touch records an access to (asid, vpn) and reports whether it missed.
func (t *TLB) Touch(asid int, vpn uint64) (missed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := tlbKey{asid, vpn}
	if _, ok := t.present[k]; ok {
		t.hits++
		return false
	}
	t.misses++
	if len(t.order) >= t.capacity {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.present, victim)
	}
	t.present[k] = len(t.order)
	t.order = append(t.order, k)
	return true
}

// Invalidate drops the entry for (asid, vpn) if present, as a protection
// change or unmap must.
func (t *TLB) Invalidate(asid int, vpn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := tlbKey{asid, vpn}
	if _, ok := t.present[k]; !ok {
		return
	}
	delete(t.present, k)
	for i, e := range t.order {
		if e == k {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// InvalidateASID drops all entries belonging to an address space (domain
// teardown, ASID recycling).
func (t *TLB) InvalidateASID(asid int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.order[:0]
	for _, k := range t.order {
		if k.asid == asid {
			delete(t.present, k)
		} else {
			kept = append(kept, k)
		}
	}
	t.order = kept
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.present = make(map[tlbKey]int)
	t.order = t.order[:0]
}

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// Pollute evicts n entries (oldest first), modelling unrelated activity such
// as duplicated library text competing for TLB slots.
func (t *TLB) Pollute(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < n && len(t.order) > 0; i++ {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.present, victim)
	}
}
