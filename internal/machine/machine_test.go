package machine

import (
	"testing"
	"testing/quick"

	"fbufs/internal/simtime"
)

func TestDecStationAnchors(t *testing.T) {
	c := DecStation5000()
	// Paper-anchored values.
	if c.PageClear != simtime.US(57) {
		t.Errorf("PageClear = %v, paper says 57us", c.PageClear)
	}
	if got := 2 * c.TLBMiss; got != simtime.US(3) {
		t.Errorf("two TLB misses = %v, Table 1 cached/volatile row is 3us", got)
	}
	// Table 1 volatile (uncached) row: frame alloc + map orig + map recv +
	// unmap recv + unmap orig + frame free + 2 TLB misses = 21us.
	row2 := c.FrameAlloc + 2*c.PTEMap + 2*c.PTEUnmap + c.FrameFree + 2*c.TLBMiss
	if row2 != simtime.US(21) {
		t.Errorf("volatile row composite = %v, want 21us", row2)
	}
	// Table 1 cached (non-volatile) row: two protection changes + misses.
	row3 := 2*c.ProtChange + 2*c.TLBMiss
	if row3 != simtime.US(29) {
		t.Errorf("cached row composite = %v, want 29us", row3)
	}
	// Plain fbufs row (uncached non-volatile): the uncached teardown path
	// plus a single protection change (secure at transfer; no restore,
	// because the buffer is destroyed rather than recycled).
	row4 := row2 + c.ProtChange
	if row4 != simtime.US(34) {
		t.Errorf("plain fbufs composite = %v, want 34us", row4)
	}
	// Copy must be the most expensive mechanism per page; COW faults land
	// in between.
	copyCost := 2*c.PageCopy + 2*c.TLBMiss
	cow := 2*c.COWMark + 2*(c.FaultTrap+c.PTEMap) + 2*c.TLBMiss
	if !(row2 < row3 && row3 < row4 && row4 < cow && cow < copyCost) {
		t.Errorf("ordering violated: %v %v %v %v %v", row2, row3, row4, cow, copyCost)
	}
}

func TestOsirisBusRates(t *testing.T) {
	c := DecStation5000()
	bits := float64(c.ATMCellPayload * 8)
	dmaRate := bits / float64(c.BusCellDMA) * 1000 // Mb/s
	if dmaRate < 360 || dmaRate > 375 {
		t.Errorf("DMA-startup-bound rate %.0f Mb/s, paper says 367", dmaRate)
	}
	effRate := bits / float64(c.BusCellDMA+c.BusContention) * 1000
	if effRate < 280 || effRate > 290 {
		t.Errorf("contended rate %.0f Mb/s, paper says 285", effRate)
	}
	linkRate := bits / float64(c.LinkCell) * 1000
	if linkRate < 510 || linkRate > 522 {
		t.Errorf("net link rate %.0f Mb/s, paper says 516", linkRate)
	}
	// 285 Mb/s is 55% of the 516 Mb/s net bandwidth (paper section 4).
	frac := effRate / linkRate
	if frac < 0.53 || frac > 0.57 {
		t.Errorf("I/O ceiling fraction %.2f, paper says 0.55", frac)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if !tlb.Touch(1, 100) {
		t.Fatal("first touch should miss")
	}
	if tlb.Touch(1, 100) {
		t.Fatal("second touch should hit")
	}
	// Same VPN, different ASID: distinct entry.
	if !tlb.Touch(2, 100) {
		t.Fatal("other ASID should miss")
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Touch(1, 1)
	tlb.Touch(1, 2)
	tlb.Touch(1, 3) // evicts (1,1)
	if !tlb.Touch(1, 1) {
		t.Fatal("evicted entry should miss")
	}
	if tlb.Touch(1, 3) {
		t.Fatal("resident entry should hit")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Touch(1, 5)
	tlb.Invalidate(1, 5)
	if !tlb.Touch(1, 5) {
		t.Fatal("invalidated entry should miss")
	}
	tlb.Invalidate(1, 999) // absent: no-op
}

func TestTLBInvalidateASID(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Touch(1, 1)
	tlb.Touch(1, 2)
	tlb.Touch(2, 1)
	tlb.InvalidateASID(1)
	if !tlb.Touch(1, 1) || !tlb.Touch(1, 2) {
		t.Fatal("asid-1 entries survived")
	}
	if tlb.Touch(2, 1) {
		t.Fatal("asid-2 entry was dropped")
	}
}

func TestTLBFlushAndPollute(t *testing.T) {
	tlb := NewTLB(8)
	for i := uint64(0); i < 8; i++ {
		tlb.Touch(1, i)
	}
	tlb.Pollute(3)
	miss := 0
	for i := uint64(0); i < 8; i++ {
		if tlb.Touch(1, i) {
			miss++
		}
	}
	if miss != 3 {
		t.Fatalf("pollute(3) caused %d misses", miss)
	}
	tlb.Flush()
	if !tlb.Touch(1, 0) {
		t.Fatal("flushed TLB should miss")
	}
}

func TestTLBDefaultCapacity(t *testing.T) {
	tlb := NewTLB(0)
	// Fill beyond R3000 capacity; entry 0 must be evicted.
	for i := uint64(0); i <= TLBEntries; i++ {
		tlb.Touch(1, i)
	}
	if !tlb.Touch(1, 0) {
		t.Fatal("entry should have been evicted at capacity 64")
	}
}

func TestTLBNeverExceedsCapacity(t *testing.T) {
	// Property: after any touch sequence the resident set is <= capacity
	// and touching a resident key is a hit.
	f := func(keys []uint8) bool {
		tlb := NewTLB(4)
		for _, k := range keys {
			tlb.Touch(int(k%3), uint64(k))
		}
		if len(tlb.present) > 4 || len(tlb.order) > 4 {
			return false
		}
		for _, k := range tlb.order {
			if _, ok := tlb.present[k]; !ok {
				return false
			}
		}
		return len(tlb.present) == len(tlb.order)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
