package machine

import (
	"testing"

	"fbufs/internal/simtime"
)

func TestFutureCPUScalesOnlyCPUWork(t *testing.T) {
	base := DecStation5000()
	fast := FutureCPU(10)

	// Memory-bandwidth-bound operations are unchanged.
	if fast.PageClear != base.PageClear {
		t.Errorf("PageClear changed: %v -> %v", base.PageClear, fast.PageClear)
	}
	if fast.PageCopy != base.PageCopy {
		t.Errorf("PageCopy changed: %v -> %v", base.PageCopy, fast.PageCopy)
	}
	// Bus and link hardware are untouched.
	if fast.BusCellDMA != base.BusCellDMA || fast.LinkCell != base.LinkCell {
		t.Error("I/O hardware timing changed by CPU speedup")
	}

	// Pure-CPU operations scale by the full factor.
	if fast.PTEMap != base.PTEMap/10 {
		t.Errorf("PTEMap %v, want %v", fast.PTEMap, base.PTEMap/10)
	}
	if fast.FaultTrap != base.FaultTrap/10 {
		t.Errorf("FaultTrap %v, want %v", fast.FaultTrap, base.FaultTrap/10)
	}

	// Half-memory-bound operations improve by strictly less than the CPU
	// factor (the paper's "memory bound" prediction).
	if fast.ProtChange <= base.ProtChange/10 {
		t.Errorf("ProtChange %v improved by the full CPU factor", fast.ProtChange)
	}
	if fast.ProtChange < base.ProtChange/2 {
		t.Errorf("ProtChange %v lost its memory-bound half", fast.ProtChange)
	}
	if fast.TLBMiss <= base.TLBMiss/10 || fast.TLBMiss > base.TLBMiss {
		t.Errorf("TLBMiss %v outside (base/10, base]", fast.TLBMiss)
	}
}

func TestFutureCPUFloor(t *testing.T) {
	// Extreme speedups bottom out at 0.1us of irreducible work per op.
	c := FutureCPU(1_000_000)
	if c.PTEMap < 100 || c.FaultTrap < 100 {
		t.Fatalf("floor violated: map=%v trap=%v", c.PTEMap, c.FaultTrap)
	}
	if c.PageClear != simtime.US(57) {
		t.Fatalf("memory op scaled: %v", c.PageClear)
	}
}

func TestFutureCPUIdentity(t *testing.T) {
	// Speedup 1 leaves every cost within rounding of the base profile.
	base := DecStation5000()
	same := FutureCPU(1)
	if same.PTEMap != base.PTEMap || same.ProtChange != base.ProtChange ||
		same.IPCLatency != base.IPCLatency {
		t.Fatalf("speedup 1 altered costs: %+v", same)
	}
}
