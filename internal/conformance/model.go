// Package conformance checks the real fbuf stack (internal/core +
// internal/aggregate) against a small executable reference model of the
// paper's semantics (Druschel & Peterson, "Fbufs: A High-Bandwidth
// Cross-Domain Transfer Facility", SOSP 1993).
//
// The model in this file is deliberately naive: plain slices and maps, one
// transition function per facility operation, written straight from the
// paper's rules so it can be audited section by section (DESIGN.md §11 has
// the rule-to-section table). It touches no clocks, no VM, no goroutines,
// and no global state — every transition is a pure function of the Model
// value — which is what makes it usable as a differential-testing oracle:
// cmds.go runs seeded command sequences against the model and the real
// stack simultaneously and reports any divergence as a shrunk, replayable
// counterexample.
//
// The model predicts more than error/success: it tracks exact virtual
// addresses (the region carve layout and chunk free-list LIFO), per-page
// frame presence and contents (so reclaim-then-touch reads back zeros),
// the §3.2.4 empty-leaf page aliasing per domain, the deallocation-notice
// queues with their overflow threshold, and the full Stats counter vector.
package conformance

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fbufs/internal/core"
	"fbufs/internal/machine"
	"fbufs/internal/vm"
)

// ErrClass buckets facility errors into the equivalence classes the model
// predicts. Two errors in the same class are "the same outcome".
type ErrClass int

// Error classes, from success to catch-all.
const (
	OK         ErrClass = iota
	EQuota              // core.ErrQuota: path chunk quota exhausted
	EAdmission          // core.ErrAdmission: tenant class share exhausted
	ERegion             // core.ErrRegionFull: no free chunks in the region
	ENotHolder          // core.ErrNotHolder: domain holds no reference
	EDead               // core.ErrDeadDomain: originator or receiver died
	EClosed             // core.ErrPathClosed
	EState              // operation on a free/draining fbuf
	EAccess             // VM-level denial (immutability, no permission, dead AS)
	EOther              // anything the model does not predict
)

// String names the class for counterexample reports.
func (e ErrClass) String() string {
	switch e {
	case OK:
		return "ok"
	case EQuota:
		return "quota"
	case EAdmission:
		return "admission"
	case ERegion:
		return "region-full"
	case ENotHolder:
		return "not-holder"
	case EDead:
		return "dead-domain"
	case EClosed:
		return "path-closed"
	case EState:
		return "bad-state"
	case EAccess:
		return "access-denied"
	default:
		return "other"
	}
}

// Classify maps a real-stack error to its class.
func Classify(err error) ErrClass {
	if err == nil {
		return OK
	}
	switch {
	case errors.Is(err, core.ErrQuota):
		return EQuota
	case errors.Is(err, core.ErrAdmission):
		return EAdmission
	case errors.Is(err, core.ErrRegionFull):
		return ERegion
	case errors.Is(err, core.ErrNotHolder):
		return ENotHolder
	case errors.Is(err, core.ErrDeadDomain):
		return EDead
	case errors.Is(err, core.ErrPathClosed):
		return EClosed
	}
	var ae *vm.AccessError
	if errors.As(err, &ae) {
		return EAccess
	}
	msg := err.Error()
	if strings.Contains(msg, "of free fbuf") || strings.Contains(msg, "of draining") {
		return EState
	}
	return EOther
}

// Hooks intentionally mutates the model away from the paper's rules, so
// tests can prove the differential harness catches a semantic bug and
// shrinks it to a minimal counterexample (the acceptance self-test).
// All hooks false is the faithful model.
type Hooks struct {
	// SkipRevokeOnTransfer drops the §2.1.3 rule "write permission is
	// revoked when the originator transfers a non-volatile fbuf".
	SkipRevokeOnTransfer bool
	// FIFOReuse predicts FIFO free-list reuse where the paper specifies
	// LIFO ("the free list is LIFO to improve locality", §3.2.1).
	FIFOReuse bool
	// SkipQuota drops the §3.2.1 chunk-quota admission check.
	SkipQuota bool
	// SkipEpochWait drops the epoch-reclaim crash rule: AdvanceEpoch
	// ignores the workers' advertised epochs and retires every parked
	// frame immediately, instead of waiting for the epoch to drain.
	SkipEpochWait bool
}

// Stats is the model's prediction of core.Stats, field for field.
type Stats struct {
	Allocs           uint64
	CacheHits        uint64
	CacheMisses      uint64
	Transfers        uint64
	MappingsBuilt    uint64
	Secures          uint64
	Frees            uint64
	Recycles         uint64
	NoticesQueued    uint64
	NoticesPiggy     uint64
	NoticesExplicit  uint64
	NoticesRing      uint64
	FramesReclaimed  uint64
	LazyRefills      uint64
	AllocFailures    uint64
	PathEvictions    uint64
	AdmissionRejects uint64
}

// MDomain models a protection domain.
type MDomain struct {
	ID      int
	Name    string
	Trusted bool
	Dead    bool
}

// MChunk models one region chunk granted to a path: a bump allocator
// (used never decreases) plus the fbufs carved from it, in carve order —
// the same order termination sweeps visit them.
type MChunk struct {
	Index int
	Used  int // pages carved so far
	Fbufs []*MFbuf
}

// MPath models a data path and its allocator.
type MPath struct {
	ID     int
	Name   string
	Member []int // domain IDs, originator first
	Pages  int   // fbuf size

	Cached     bool
	Volatile   bool
	Integrated bool
	Populate   bool
	FIFO       bool

	Quota     int // as set: >0 explicit, 0 manager default, <0 unlimited
	Closed    bool
	Allocated uint64
	Free      []*MFbuf // LIFO: push back, pop back (front when FIFO)
	Chunks    []*MChunk
	Depot     *MDepot // nil when the path has no magazine depot
}

// MDepot models a path's magazine depot: a bounded LIFO stack of whole
// units plus sharded loose-inventory lists, mirroring core.Depot's
// exchange, spill, and drain rules exactly (unit stack top-down, shards
// 0..n-1, round-robin spill cursor).
type MDepot struct {
	Unit      int
	MaxFull   int
	Full      [][]*MFbuf
	Shards    [][]*MFbuf
	SpillNext int
	Closed    bool
}

// inventory counts the fbufs the depot holds (units + shards).
func (d *MDepot) inventory() int {
	n := 0
	for _, u := range d.Full {
		n += len(u)
	}
	for _, s := range d.Shards {
		n += len(s)
	}
	return n
}

// drain removes and returns the whole inventory in core.Depot.drain order:
// unit stack top-down, each unit in slice order, then shards 0..n-1.
func (d *MDepot) drain() []*MFbuf {
	var out []*MFbuf
	for i := len(d.Full) - 1; i >= 0; i-- {
		out = append(out, d.Full[i]...)
	}
	d.Full = nil
	for i, s := range d.Shards {
		out = append(out, s...)
		d.Shards[i] = nil
	}
	return out
}

// Fbuf lifecycle states, mirroring core.State.
const (
	StFree = iota
	StLive
	StDraining
)

// MFbuf models one fbuf: identity (the exact VA the region layout
// dictates), lifecycle, per-domain references and mappings, and per-page
// frame presence plus contents.
type MFbuf struct {
	VA      uint64
	Pages   int
	Path    *MPath
	Orig    int
	State   int
	Secured bool
	Refs    map[int]int
	Mapped  map[int]bool
	Present []bool // physical frame attached (populate / lazy refill)
	Content []byte // predicted contents, Pages*PageSize
	Torn    bool   // removed from its chunk; VA no longer resolves to it
	Tag     int    // runner bookkeeping: index of the paired real fbuf
}

// noticeKey identifies a deallocation-notice queue: which domain freed
// last (holder) and which domain's allocator must learn of it (owner).
type noticeKey struct{ holder, owner int }

// Model is the executable reference: the facility's entire architectural
// state, small enough to diff against the real manager after every step.
type Model struct {
	ChunkPages   int
	NumChunks    int
	PageSize     int
	DefaultQuota int
	NoticeLimit  int
	Hooks        Hooks

	FreeChunks []int // LIFO stack of free chunk indices (top = last)
	Domains    map[int]*MDomain
	Paths      []*MPath
	Notices    map[noticeKey][]*MFbuf
	// Rings models the in-flight coalesced notice batches per (holder,
	// owner) pair: each element is one completion entry, FIFO. Fbufs in a
	// ring batch have left the notice queue but are still draining; a
	// crash leaves them in place on both sides (only the queue is
	// flushed), so they retire through the normal recycle flow later.
	Rings map[noticeKey][][]*MFbuf
	// RingDepth is the per-pair completion-ring capacity (0 = no rings).
	RingDepth int
	// Leaf records §3.2.4 empty-leaf aliases: per domain, the set of
	// region page addresses where an unpermitted read installed the
	// shared zero page. Such a page reads as zeros for that domain until
	// a real mapping replaces it (eager transfer map or a write fault).
	Leaf  map[int]map[uint64]bool
	Stats Stats

	// Epoch-based frame reclamation (PR 10). Epoch is the current epoch
	// (1 once a worker registers, matching core.RegisterEpochWorker);
	// EpochPinned is the runner's single worker's advertised epoch (0 =
	// quiescent); Deferred is the parked-frame ledger, one entry per
	// epoch with the number of frame releases parked under it.
	Epoch       uint64
	EpochPinned uint64
	Deferred    []EpochEntry
}

// EpochEntry is one epoch's worth of parked frame releases.
type EpochEntry struct {
	Epoch uint64
	Count int
}

// NewModel builds a model of a manager with the given geometry, mirroring
// core.NewManagerGeometry: all chunks free, stacked so index 0 is on top.
func NewModel(chunkPages, numChunks, defaultQuota, noticeLimit int) *Model {
	m := &Model{
		ChunkPages:   chunkPages,
		NumChunks:    numChunks,
		PageSize:     machine.PageSize,
		DefaultQuota: defaultQuota,
		NoticeLimit:  noticeLimit,
		Domains:      map[int]*MDomain{},
		Notices:      map[noticeKey][]*MFbuf{},
		Rings:        map[noticeKey][][]*MFbuf{},
		Leaf:         map[int]map[uint64]bool{},
	}
	for i := numChunks - 1; i >= 0; i-- {
		m.FreeChunks = append(m.FreeChunks, i)
	}
	return m
}

// AddDomain registers a domain (setup only).
func (m *Model) AddDomain(id int, name string, trusted bool) *MDomain {
	d := &MDomain{ID: id, Name: name, Trusted: trusted}
	m.Domains[id] = d
	return d
}

// AddPath registers a path (setup only). Path IDs must be assigned in the
// same order the real manager assigns them.
func (m *Model) AddPath(id int, name string, opts core.Options, pages int, member ...int) *MPath {
	p := &MPath{
		ID: id, Name: name, Member: member, Pages: pages,
		Cached: opts.Cached, Volatile: opts.Volatile,
		Integrated: opts.Integrated, Populate: opts.Populate, FIFO: opts.FIFO,
	}
	m.Paths = append(m.Paths, p)
	return p
}

func (m *Model) dead(id int) bool    { return m.Domains[id].Dead }
func (m *Model) trusted(id int) bool { return m.Domains[id].Trusted }

// EffQuota resolves a path's chunk limit like DataPath.Quota: explicit
// when positive, manager default when 0, disabled (0) when negative.
func (m *Model) EffQuota(p *MPath) int {
	q := p.Quota
	if q == 0 {
		q = m.DefaultQuota
	}
	if q < 0 {
		return 0
	}
	return q
}

// --- Allocation (§3.2.1: per-path allocator, chunked region, quota) ---

// Alloc allocates one fbuf on path p: free-list reuse first (LIFO, write
// permission already restored), then a carve from the path's chunks, then
// a kernel chunk grant subject to the quota.
func (m *Model) Alloc(p *MPath) (*MFbuf, ErrClass) {
	if p.Closed {
		return nil, EClosed
	}
	if m.dead(p.Member[0]) {
		return nil, EDead
	}
	m.Stats.Allocs++
	p.Allocated++
	if p.Cached && len(p.Free) > 0 {
		var f *MFbuf
		if p.FIFO != m.Hooks.FIFOReuse { // faithful: pop per path option
			f = p.Free[0]
			p.Free = p.Free[1:]
		} else {
			f = p.Free[len(p.Free)-1]
			p.Free = p.Free[:len(p.Free)-1]
		}
		m.Stats.CacheHits++
		f.State = StLive
		f.Refs = map[int]int{p.Member[0]: 1}
		return f, OK
	}
	m.Stats.CacheMisses++
	return m.carve(p)
}

// carve builds a new fbuf from chunk space, granting a chunk when no
// existing chunk of the path has room.
func (m *Model) carve(p *MPath) (*MFbuf, ErrClass) {
	var c *MChunk
	for _, cc := range p.Chunks {
		if cc.Used+p.Pages <= m.ChunkPages {
			c = cc
			break
		}
	}
	if c == nil {
		if q := m.EffQuota(p); !m.Hooks.SkipQuota && q > 0 && len(p.Chunks) >= q {
			m.Stats.AllocFailures++
			return nil, EQuota
		}
		if len(m.FreeChunks) == 0 {
			m.Stats.AllocFailures++
			return nil, ERegion
		}
		idx := m.FreeChunks[len(m.FreeChunks)-1]
		m.FreeChunks = m.FreeChunks[:len(m.FreeChunks)-1]
		c = &MChunk{Index: idx}
		p.Chunks = append(p.Chunks, c)
	}
	orig := p.Member[0]
	f := &MFbuf{
		VA:      uint64(core.RegionBase) + uint64(c.Index*m.ChunkPages+c.Used)*uint64(m.PageSize),
		Pages:   p.Pages,
		Path:    p,
		Orig:    orig,
		State:   StLive,
		Refs:    map[int]int{orig: 1},
		Mapped:  map[int]bool{},
		Present: make([]bool, p.Pages),
		Content: make([]byte, p.Pages*m.PageSize),
		Tag:     -1,
	}
	c.Used += p.Pages
	c.Fbufs = append(c.Fbufs, f)
	if p.Populate {
		for i := range f.Present {
			f.Present[i] = true
		}
		f.Mapped[orig] = true
		// The populate mapping replaces any stale empty-leaf alias the
		// originator had over these pages.
		m.clearLeaf(orig, f, all)
	}
	return f, OK
}

// AllocBatch mirrors DataPath.AllocBatch: free-list pops first, remaining
// slots fall through to full Alloc calls; on failure the first n slots
// stay allocated.
func (m *Model) AllocBatch(p *MPath, k int) ([]*MFbuf, ErrClass) {
	if k == 0 {
		return nil, OK
	}
	if p.Closed {
		return nil, EClosed
	}
	if m.dead(p.Member[0]) {
		return nil, EDead
	}
	var out []*MFbuf
	if p.Cached {
		for len(out) < k && len(p.Free) > 0 {
			f, cls := m.Alloc(p) // free list non-empty: always a hit
			if cls != OK {
				return out, cls
			}
			out = append(out, f)
		}
	}
	for len(out) < k {
		f, cls := m.Alloc(p)
		if cls != OK {
			return out, cls
		}
		out = append(out, f)
	}
	return out, OK
}

// --- Transfer (§2.1: copy semantics; §2.1.3: eager secure; §3.2.2:
// receiver mappings built eagerly for non-integrated transfers) ---

// Transfer passes one reference from from to to.
func (m *Model) Transfer(f *MFbuf, from, to int) ErrClass {
	if f.State != StLive {
		return EState
	}
	if f.Refs[from] == 0 {
		return ENotHolder
	}
	if m.dead(to) {
		return EDead
	}
	m.Stats.Transfers++
	if !f.Path.Volatile && !f.Secured && from == f.Orig && !m.trusted(f.Orig) {
		if !m.Hooks.SkipRevokeOnTransfer {
			m.secure(f)
		}
	}
	if from != to && !f.Mapped[to] && !f.Path.Integrated {
		for pg := 0; pg < f.Pages; pg++ {
			if f.Present[pg] {
				m.Stats.MappingsBuilt++
				m.clearLeaf(to, f, pg)
			}
		}
		f.Mapped[to] = true
	}
	f.Refs[to]++
	return OK
}

// DupRef duplicates a reference a domain already holds.
func (m *Model) DupRef(f *MFbuf, d int) ErrClass {
	if f.State != StLive {
		return EState
	}
	if f.Refs[d] == 0 {
		return ENotHolder
	}
	f.Refs[d]++
	return OK
}

// Secure raises protection at a holder's request (§2.1.2 volatile fbufs):
// a no-op when already secured or when the originator is trusted.
func (m *Model) Secure(f *MFbuf, d int) ErrClass {
	if f.State != StLive {
		return EState
	}
	if f.Refs[d] == 0 {
		return ENotHolder
	}
	if f.Secured || m.trusted(f.Orig) {
		return OK
	}
	m.secure(f)
	return OK
}

func (m *Model) secure(f *MFbuf) {
	f.Secured = true
	m.Stats.Secures++
}

// --- Access (§3.2.2 lazy refill; §3.2.4 empty-leaf rule) ---

// all marks a clearLeaf covering every page of the fbuf.
const all = -1

func (m *Model) clearLeaf(d int, f *MFbuf, pg int) {
	set := m.Leaf[d]
	if set == nil {
		return
	}
	if pg == all {
		for i := 0; i < f.Pages; i++ {
			delete(set, f.VA+uint64(i*m.PageSize))
		}
		return
	}
	delete(set, f.VA+uint64(pg*m.PageSize))
}

func (m *Model) markLeaf(d int, va uint64) {
	set := m.Leaf[d]
	if set == nil {
		set = map[uint64]bool{}
		m.Leaf[d] = set
	}
	set[va] = true
}

// rights reports whether d can access f at all: a current reference, being
// the originator, or a persistent cached mapping (the fault handler's
// hasRights predicate). A torn-down fbuf no longer resolves.
func (m *Model) rights(f *MFbuf, d int) bool {
	if f.Torn || (f.State == StFree && !f.Path.Cached) {
		return false
	}
	return f.Refs[d] > 0 || d == f.Orig || (f.Path.Cached && f.Mapped[d])
}

// Write models Fbuf.Write(d, off, data): only the originator of an
// unsecured fbuf may write (immutable-after-transfer, §2.1). The runner
// only issues writes to model-Live fbufs, so canary poisoning under fbsan
// never interferes.
func (m *Model) Write(f *MFbuf, d int, off int, data []byte) ErrClass {
	if m.dead(d) {
		return EAccess
	}
	if !m.rights(f, d) || d != f.Orig || f.Secured {
		return EAccess
	}
	for len(data) > 0 {
		pg := off / m.PageSize
		if !f.Present[pg] {
			f.Present[pg] = true
			m.Stats.LazyRefills++
		}
		// Any write fault installs a real RW mapping over a stale leaf
		// alias; a plain store needs no fault and changes no mapping.
		m.clearLeaf(d, f, pg)
		f.Mapped[d] = true
		n := m.PageSize - off%m.PageSize
		if n > len(data) {
			n = len(data)
		}
		copy(f.Content[off:], data[:n])
		data = data[n:]
		off += n
	}
	return OK
}

// Read models Fbuf.Read(d, off, buf): permitted readers see contents
// (lazily refilled pages read back zeros); unpermitted readers silently
// get the empty-leaf page (§3.2.4) — reads never fail inside the region.
// The returned slice is the predicted data.
func (m *Model) Read(f *MFbuf, d int, off, n int) ([]byte, ErrClass) {
	if m.dead(d) {
		return nil, EAccess
	}
	out := make([]byte, n)
	pos := 0
	for pos < n {
		pg := (off + pos) / m.PageSize
		va := f.VA + uint64(pg*m.PageSize)
		take := m.PageSize - (off+pos)%m.PageSize
		if take > n-pos {
			take = n - pos
		}
		leafed := m.Leaf[d][va]
		if !leafed && m.rights(f, d) {
			if !f.Present[pg] {
				f.Present[pg] = true
				m.Stats.LazyRefills++
				for i := pg * m.PageSize; i < (pg+1)*m.PageSize; i++ {
					f.Content[i] = 0
				}
			}
			f.Mapped[d] = true
			copy(out[pos:pos+take], f.Content[off+pos:])
		} else if !leafed {
			// First unpermitted touch: the kernel maps the shared empty
			// leaf at this page for this domain; it reads as zeros and
			// keeps doing so until a real mapping replaces it.
			m.markLeaf(d, va)
		}
		pos += take
	}
	return out, OK
}

// --- Free, notices, recycle (§3.2.1 deallocation; LIFO free list;
// write permission restored to the originator on reuse) ---

// Free drops one reference; FreeBatch frees a list with the recycle
// batching FreeBatch performs (deferred free-list pushes).
func (m *Model) Free(f *MFbuf, d int) ErrClass { return m.freeOne(f, d, nil) }

// freeBatchState mirrors core's recycleBatch: the first cached recycle
// latches a path whose free-list pushes are deferred to the end of the
// batch; overflow-notice recycles still push immediately.
type freeBatchState struct {
	path  *MPath
	fbufs []*MFbuf
}

// FreeBatch mirrors Manager.FreeBatch: stops at the first error with
// earlier fbufs already freed.
func (m *Model) FreeBatch(fs []*MFbuf, d int) ErrClass {
	var b freeBatchState
	for _, f := range fs {
		if cls := m.freeOne(f, d, &b); cls != OK {
			m.flushBatch(&b)
			return cls
		}
	}
	m.flushBatch(&b)
	return OK
}

func (m *Model) flushBatch(b *freeBatchState) {
	if b.path == nil {
		return
	}
	b.path.Free = append(b.path.Free, b.fbufs...)
	b.fbufs = nil
}

func (m *Model) freeOne(f *MFbuf, d int, b *freeBatchState) ErrClass {
	if f.State != StLive {
		return EState
	}
	if f.Refs[d] == 0 {
		return ENotHolder
	}
	m.Stats.Frees++
	f.Refs[d]--
	if f.Refs[d] == 0 {
		delete(f.Refs, d)
		if !f.Path.Cached && d != f.Orig && f.Mapped[d] {
			delete(f.Mapped, d)
		}
	}
	if len(f.Refs) > 0 {
		return OK
	}
	// Last reference anywhere: recycle directly when there is no live
	// owning allocator to notify, else queue a deallocation notice.
	if d == f.Orig || m.dead(f.Orig) || f.Path.Closed {
		m.recycle(f, b)
		return OK
	}
	f.State = StDraining
	k := noticeKey{holder: d, owner: f.Orig}
	m.Notices[k] = append(m.Notices[k], f)
	n := len(m.Notices[k])
	m.Stats.NoticesQueued++
	if n >= m.NoticeLimit {
		batch := m.Notices[k]
		delete(m.Notices, k)
		m.Stats.NoticesExplicit += uint64(n)
		for _, ff := range batch {
			m.recycle(ff, nil) // explicit notice: immediate recycle
		}
	}
	return OK
}

// DeliverNotices models the piggybacked notice delivery on an RPC reply
// from replier back to caller.
func (m *Model) DeliverNotices(replier, caller int) {
	k := noticeKey{holder: replier, owner: caller}
	batch := m.Notices[k]
	delete(m.Notices, k)
	if len(batch) > 0 {
		m.Stats.NoticesPiggy += uint64(len(batch))
		for _, f := range batch {
			m.recycle(f, nil)
		}
	}
}

// RingFull reports whether the (holder, owner) completion ring has no room
// for another coalesced notice entry.
func (m *Model) RingFull(holder, owner int) bool {
	return m.RingDepth > 0 && len(m.Rings[noticeKey{holder: holder, owner: owner}]) >= m.RingDepth
}

// RingSubmit models Manager.CollectNotices plus posting one coalesced
// completion entry: the pending notice batch moves from the queue into the
// in-flight ring, its fbufs still draining. Returns the batch size; an
// empty queue posts nothing.
func (m *Model) RingSubmit(holder, owner int) int {
	k := noticeKey{holder: holder, owner: owner}
	batch := m.Notices[k]
	if len(batch) == 0 {
		return 0
	}
	delete(m.Notices, k)
	m.Stats.NoticesRing += uint64(len(batch))
	m.Rings[k] = append(m.Rings[k], batch)
	return len(batch)
}

// RingDrain models retiring the oldest in-flight completion entry
// (Manager.RetireNotices): its whole batch recycles in collection order.
// Returns the batch size; 0 means the ring was empty (entries are never
// empty, so the two cases cannot be confused).
func (m *Model) RingDrain(holder, owner int) int {
	k := noticeKey{holder: holder, owner: owner}
	q := m.Rings[k]
	if len(q) == 0 {
		return 0
	}
	batch := q[0]
	if len(q) == 1 {
		delete(m.Rings, k)
	} else {
		m.Rings[k] = q[1:]
	}
	for _, f := range batch {
		m.recycle(f, nil)
	}
	return len(batch)
}

// recycle returns an fbuf to its allocator: cached paths push it on the
// free list with mappings intact, secured protection reverted ("write
// permissions are returned to the originator"), contents preserved;
// otherwise the fbuf is fully torn down and its chunk freed when drained.
func (m *Model) recycle(f *MFbuf, b *freeBatchState) {
	m.Stats.Recycles++
	p := f.Path
	if p.Cached && !m.dead(f.Orig) {
		if b != nil {
			if b.path == nil && !p.Closed {
				b.path = p
			}
			if b.path == p {
				m.resetForFreeList(f)
				b.fbufs = append(b.fbufs, f)
				return
			}
		}
		if !p.Closed {
			m.resetForFreeList(f)
			p.Free = append(p.Free, f)
			return
		}
	}
	// Full teardown.
	m.teardown(f)
}

// teardown mirrors Manager.teardown: mappings gone, every attached frame's
// release parked for the current epoch, the fbuf removed from its chunk.
func (m *Model) teardown(f *MFbuf) {
	frames := 0
	for i := range f.Present {
		if f.Present[i] {
			frames++
		}
	}
	m.parkFrames(frames)
	f.Refs = map[int]int{}
	f.Mapped = map[int]bool{}
	for i := range f.Present {
		f.Present[i] = false
	}
	f.State = StFree
	f.Secured = false
	f.Torn = true
	m.removeFromChunk(f)
}

func (m *Model) resetForFreeList(f *MFbuf) {
	f.Secured = false
	f.State = StFree
	f.Refs = map[int]int{}
}

func (m *Model) removeFromChunk(f *MFbuf) {
	idx := int((f.VA - uint64(core.RegionBase)) / uint64(m.ChunkPages*m.PageSize))
	var c *MChunk
	for _, cc := range f.Path.Chunks {
		if cc.Index == idx {
			c = cc
			break
		}
	}
	if c == nil {
		return
	}
	for i, ff := range c.Fbufs {
		if ff == f {
			c.Fbufs = append(c.Fbufs[:i], c.Fbufs[i+1:]...)
			break
		}
	}
	if len(c.Fbufs) > 0 {
		return
	}
	for i, cc := range f.Path.Chunks {
		if cc == c {
			f.Path.Chunks = append(f.Path.Chunks[:i], f.Path.Chunks[i+1:]...)
			break
		}
	}
	m.FreeChunks = append(m.FreeChunks, c.Index)
}

// --- Quota, reclamation, termination ---

// SetQuota mirrors DataPath.SetQuota.
func (m *Model) SetQuota(p *MPath, chunks int) { p.Quota = chunks }

// ReclaimIdle models the pageout daemon reclaiming frames from free-listed
// fbufs, oldest-freed first, discarding contents (§3.2.1: "it discards the
// fbuf's contents; it does not have to page it out"). Paths are visited in
// ID order, matching the manager's deterministic sweep.
func (m *Model) ReclaimIdle(maxFrames int) int {
	reclaimed := 0
	for _, p := range m.Paths {
		if p.Closed {
			continue
		}
		for i := 0; i < len(p.Free) && reclaimed < maxFrames; i++ {
			f := p.Free[i]
			for pg := 0; pg < f.Pages && reclaimed < maxFrames; pg++ {
				if !f.Present[pg] {
					continue
				}
				f.Present[pg] = false
				for j := pg * m.PageSize; j < (pg+1)*m.PageSize; j++ {
					f.Content[j] = 0
				}
				m.parkFrames(1)
				reclaimed++
				m.Stats.FramesReclaimed++
			}
			if reclaimed >= maxFrames {
				break
			}
		}
	}
	return reclaimed
}

// Crash models domain termination (§3.3): every reference the domain holds
// is released (its endpoints die, deallocating associated fbufs), stranded
// notices are flushed, and every path it participates in closes — chunks
// stay allocated only while external references drain.
func (m *Model) Crash(d int) {
	dom := m.Domains[d]
	if dom.Dead || dom.Trusted {
		return
	}
	dom.Dead = true
	// Visit all fbufs chunk by chunk in region order, carve order within
	// a chunk, over a snapshot (recycles mutate the chunk lists).
	type victim struct{ f *MFbuf }
	var visit []victim
	for idx := 0; idx < m.NumChunks; idx++ {
		for _, p := range m.Paths {
			for _, c := range p.Chunks {
				if c.Index != idx {
					continue
				}
				for _, f := range c.Fbufs {
					visit = append(visit, victim{f})
				}
			}
		}
	}
	for _, v := range visit {
		f := v.f
		if f.State == StLive && f.Refs[d] > 0 {
			f.Refs[d] = 1
			m.freeOne(f, d, nil)
		}
		delete(f.Mapped, d)
	}
	// Flush notices stranded at or destined for the dead domain, in
	// sorted key order (the manager sorts for determinism).
	var stranded []noticeKey
	for k := range m.Notices {
		if k.holder == d || k.owner == d {
			stranded = append(stranded, k)
		}
	}
	sort.Slice(stranded, func(i, j int) bool {
		if stranded[i].holder != stranded[j].holder {
			return stranded[i].holder < stranded[j].holder
		}
		return stranded[i].owner < stranded[j].owner
	})
	for _, k := range stranded {
		batch := m.Notices[k]
		delete(m.Notices, k)
		for _, f := range batch {
			m.recycle(f, nil)
		}
	}
	// Close every path the domain participates in, in ID order.
	for _, p := range m.Paths {
		for _, id := range p.Member {
			if id == d {
				m.ClosePath(p)
				break
			}
		}
	}
	// Termination destroys the address space: empty-leaf aliases are gone
	// and every future access by this domain faults.
	delete(m.Leaf, d)
}

// EvictPath models Manager.EvictPath (path-cache demotion): every
// free-listed fbuf — shared free list first, then the depot's inventory in
// drain order — is fully torn down; live and draining fbufs are untouched —
// eviction must never revoke an outstanding reference. The path (and its
// depot) stays open. Returns the number of fbufs torn down, matching the
// real manager's return value.
func (m *Model) EvictPath(p *MPath) int {
	if p.Closed {
		return 0
	}
	fl := p.Free
	p.Free = nil
	if p.Depot != nil {
		fl = append(fl, p.Depot.drain()...)
	}
	for _, f := range fl {
		// Same teardown the real eviction performs: a recycle that cannot
		// re-enter the free list (the list was detached above).
		m.Stats.Recycles++
		m.teardown(f)
	}
	m.Stats.PathEvictions++
	return len(fl)
}

// ClosePath models Manager.ClosePath: the free list is torn down, then the
// depot is closed and its drained inventory torn down the same way; live
// fbufs drain through the normal free/notice flow.
func (m *Model) ClosePath(p *MPath) {
	if p.Closed {
		return
	}
	p.Closed = true
	fl := p.Free
	p.Free = nil
	for _, f := range fl {
		m.recycle(f, nil)
	}
	if d := p.Depot; d != nil {
		d.Closed = true
		for _, f := range d.drain() {
			m.recycle(f, nil)
		}
	}
}

// --- Depot exchange and epoch-based reclamation (PR 10) ---

// parkFrames records n frame releases deferred to the current epoch — the
// model twin of n deferFrameFree calls with a worker registered. Entries
// for the same epoch merge, keeping the ledger one entry per epoch.
func (m *Model) parkFrames(n int) {
	if n == 0 || m.Epoch == 0 {
		return
	}
	if k := len(m.Deferred); k > 0 && m.Deferred[k-1].Epoch == m.Epoch {
		m.Deferred[k-1].Count += n
		return
	}
	m.Deferred = append(m.Deferred, EpochEntry{Epoch: m.Epoch, Count: n})
}

// EpochPending returns the number of parked frame releases.
func (m *Model) EpochPending() int {
	n := 0
	for _, e := range m.Deferred {
		n += e.Count
	}
	return n
}

// EpochEnter advertises the current epoch for the runner's worker
// (EpochWorker.Enter); re-entering refreshes the advertisement.
func (m *Model) EpochEnter() { m.EpochPinned = m.Epoch }

// EpochExit clears the advertisement (EpochWorker.Exit).
func (m *Model) EpochExit() { m.EpochPinned = 0 }

// AdvanceEpoch mirrors Manager.AdvanceEpoch: the epoch advances and every
// parked release whose stamp is older than the minimum advertised epoch
// retires. A quiescent worker (pin 0) constrains nothing. Returns the
// number of frames retired. The SkipEpochWait hook drops the wait — the
// buggy model retires frames a pinned worker may still be using.
func (m *Model) AdvanceEpoch() int {
	if m.Epoch == 0 {
		return 0
	}
	next := m.Epoch + 1
	minPinned := next
	if !m.Hooks.SkipEpochWait && m.EpochPinned != 0 && m.EpochPinned < minPinned {
		minPinned = m.EpochPinned
	}
	retired := 0
	keep := m.Deferred[:0]
	for _, e := range m.Deferred {
		if e.Epoch < minPinned {
			retired += e.Count
		} else {
			keep = append(keep, e)
		}
	}
	m.Deferred = keep
	m.Epoch = next
	return retired
}

// exchangeFull mirrors Depot.ExchangeFull: on a closed depot the stranded
// unit tears down (no Recycles recount — teardownStashed semantics); below
// the stack bound the unit stacks; otherwise it spills whole into the
// round-robin shard.
func (m *Model) exchangeFull(d *MDepot, unit []*MFbuf) {
	if len(unit) == 0 {
		return
	}
	if d.Closed {
		for _, f := range unit {
			m.teardown(f)
		}
		return
	}
	if len(d.Full) < d.MaxFull {
		d.Full = append(d.Full, unit)
		return
	}
	s := d.SpillNext % len(d.Shards)
	d.SpillNext++
	d.Shards[s] = append(d.Shards[s], unit...)
}

// DepotCharge mirrors DataPath.DepotCharge: up to n fbufs move from the
// hot tail of the free list into the depot as one unit. Returns the number
// moved (0 on a depot-less or closed path).
func (m *Model) DepotCharge(p *MPath, n int) int {
	d := p.Depot
	if d == nil || n <= 0 || p.Closed {
		return 0
	}
	if n > len(p.Free) {
		n = len(p.Free)
	}
	if n == 0 {
		return 0
	}
	unit := append([]*MFbuf(nil), p.Free[len(p.Free)-n:]...)
	p.Free = p.Free[:len(p.Free)-n]
	m.exchangeFull(d, unit)
	return n
}

// DepotDischarge mirrors DataPath.DepotDischarge: the depot's entire
// inventory returns to the free list in drain order. On a closed path the
// drained fbufs tear down instead and the count is 0 (in practice the
// depot is already closed and empty then).
func (m *Model) DepotDischarge(p *MPath) int {
	d := p.Depot
	if d == nil {
		return 0
	}
	inv := d.drain()
	if len(inv) == 0 {
		return 0
	}
	if p.Closed {
		for _, f := range inv {
			m.teardown(f)
		}
		return 0
	}
	p.Free = append(p.Free, inv...)
	return len(inv)
}

// LiveSummary formats a short account of the model state for divergence
// reports.
func (m *Model) LiveSummary() string {
	var sb strings.Builder
	for _, p := range m.Paths {
		live, draining := 0, 0
		for _, c := range p.Chunks {
			for _, f := range c.Fbufs {
				switch f.State {
				case StLive:
					live++
				case StDraining:
					draining++
				}
			}
		}
		fmt.Fprintf(&sb, "%s[id%d chunks=%d free=%d live=%d draining=%d closed=%v] ",
			p.Name, p.ID, len(p.Chunks), len(p.Free), live, draining, p.Closed)
	}
	return strings.TrimSpace(sb.String())
}
