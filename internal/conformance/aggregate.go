package conformance

// Aggregate-layer differential runner: seeded DAG-editing op sequences
// (New/Join/Split/Clip/Push/Pop/Transfer/Clone/Free) run against the
// real internal/aggregate stack with a byte-slice reference model.
//
// The model of an aggregate message is simply its byte content plus the
// identity of its current holder: every editing operation the paper's
// §3.2.4 DAG representation supports (concatenate, fragment, clip,
// header push/pop) has an obvious meaning on a flat byte slice, and the
// implementation — whatever tree of leaves and pair nodes it builds,
// whatever reference rebalancing it performs — must read back exactly
// those bytes for the holder, and must converge to zero live fbufs once
// every message is freed and all notices are delivered.

import (
	"bytes"
	"fmt"
	"math/rand"

	"fbufs/internal/aggregate"
	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// aslot pairs a live message view with its reference content.
type aslot struct {
	m      *aggregate.Msg
	data   []byte
	ctx    *aggregate.Ctx
	holder *domain.Domain
	moved  bool // transferred away from its building ctx: DAG edits done
}

const aggMaxSlots = 12

// aggRig is the fixed aggregate differential topology: an integrated
// context building in A (data path A->B->C) and a plain context
// building in B (data path B->C).
type aggRig struct {
	mgr   *core.Manager
	reg   *domain.Registry
	a, b  *domain.Domain
	cdom  *domain.Domain
	ctxA  *aggregate.Ctx
	ctxB  *aggregate.Ctx
	slots []aslot
}

func newAggRig() (*aggRig, error) {
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), confFrames, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, 4, 64)

	g := &aggRig{mgr: mgr, reg: reg}
	g.a = reg.New("A")
	g.b = reg.New("B")
	g.cdom = reg.New("C")

	pa, err := mgr.NewPath("agg-a", core.Options{Cached: true, Volatile: true, Populate: true}, 2, g.a, g.b, g.cdom)
	if err != nil {
		return nil, err
	}
	pb, err := mgr.NewPath("agg-b", core.Options{Cached: true, Volatile: true, Populate: true}, 2, g.b, g.cdom)
	if err != nil {
		return nil, err
	}
	// The differential workload keeps up to aggMaxSlots multi-fbuf
	// messages alive at once; the region (64 chunks), not a per-path
	// quota, is the bound under test here.
	pa.SetQuota(-1)
	pb.SetQuota(-1)
	if g.ctxA, err = aggregate.NewCtx(mgr, pa, true); err != nil {
		return nil, err
	}
	if g.ctxB, err = aggregate.NewCtx(mgr, pb, false); err != nil {
		return nil, err
	}
	return g, nil
}

// verify reads the message back as its holder and compares with the
// reference bytes.
func (g *aggRig) verify(tag string, s *aslot) error {
	got, err := s.m.ReadAll(s.holder)
	if err != nil {
		return fmt.Errorf("aggregate conformance: %s: ReadAll(%s): %v", tag, s.holder, err)
	}
	if !bytes.Equal(got, s.data) {
		return fmt.Errorf("aggregate conformance: %s: content mismatch as %s: got %d bytes %x..., want %d bytes %x...",
			tag, s.holder, len(got), head(got), len(s.data), head(s.data))
	}
	return nil
}

func head(b []byte) []byte {
	if len(b) > 8 {
		return b[:8]
	}
	return b
}

// seededBytes produces deterministic patterned content so a wrong-offset
// or wrong-leaf read never collides with the expected bytes.
func seededBytes(rnd *rand.Rand, n int) []byte {
	b := make([]byte, n)
	x := byte(rnd.Intn(256))
	for i := range b {
		b[i] = x + byte(i*7)
	}
	return b
}

// nextOf returns the downstream domain a holder transfers to on the
// slot's data path (A->B->C for ctxA, B->C for ctxB).
func (g *aggRig) nextOf(s *aslot) *domain.Domain {
	switch s.holder {
	case g.a:
		return g.b
	case g.b:
		return g.cdom
	}
	return nil
}

// RunAggregate executes n seeded aggregate operations differentially and
// then drives the rig to quiescence, returning the first mismatch.
func RunAggregate(seed int64, n int) error {
	g, err := newAggRig()
	if err != nil {
		return err
	}
	rnd := rand.New(rand.NewSource(seed))
	ctxs := []*aggregate.Ctx{g.ctxA, g.ctxB}

	newSlot := func() error {
		if len(g.slots) >= aggMaxSlots {
			return nil
		}
		ctx := ctxs[rnd.Intn(len(ctxs))]
		data := seededBytes(rnd, 1+rnd.Intn(3*ctx.DataFbufBytes()))
		m, err := ctx.NewData(data)
		if err != nil {
			return fmt.Errorf("aggregate conformance: NewData(%d): %v", len(data), err)
		}
		g.slots = append(g.slots, aslot{m: m, data: data, ctx: ctx, holder: ctx.Dom})
		return nil
	}

	drop := func(i int) { g.slots = append(g.slots[:i], g.slots[i+1:]...) }

	for step := 0; step < n; step++ {
		if len(g.slots) == 0 {
			if err := newSlot(); err != nil {
				return err
			}
			continue
		}
		i := rnd.Intn(len(g.slots))
		s := &g.slots[i]
		op := rnd.Intn(10)
		// Editing ops require the message to still live in its building
		// context (post-transfer views are read/free-only, as in the
		// protocol stacks).
		if s.moved && op < 6 {
			op = 6 + rnd.Intn(4)
		}
		switch op {
		case 0: // New
			if err := newSlot(); err != nil {
				return err
			}
		case 1: // ClipHead
			k := rnd.Intn(len(s.data) + 1)
			out, err := s.ctx.ClipHead(s.m, k)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d ClipHead(%d of %d): %v", step, k, len(s.data), err)
			}
			s.m, s.data = out, s.data[k:]
		case 2: // ClipTail
			k := rnd.Intn(len(s.data) + 1)
			out, err := s.ctx.ClipTail(s.m, k)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d ClipTail(%d of %d): %v", step, k, len(s.data), err)
			}
			s.m, s.data = out, s.data[:len(s.data)-k]
		case 3: // Split
			if len(g.slots) >= aggMaxSlots {
				continue
			}
			off := rnd.Intn(len(s.data) + 1)
			m1, m2, err := s.ctx.Split(s.m, off)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d Split(%d of %d): %v", step, off, len(s.data), err)
			}
			d1, d2 := s.data[:off], s.data[off:]
			s.m, s.data = m1, d1
			g.slots = append(g.slots, aslot{m: m2, data: d2, ctx: s.ctx, holder: s.holder})
		case 4: // Join with a sibling from the same ctx+holder
			j := -1
			for k := range g.slots {
				if k != i && g.slots[k].ctx == s.ctx && g.slots[k].holder == s.holder && !g.slots[k].moved {
					j = k
					break
				}
			}
			if j < 0 {
				continue
			}
			t := &g.slots[j]
			m, err := s.ctx.Join(s.m, t.m)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d Join(%d+%d): %v", step, len(s.data), len(t.data), err)
			}
			s.m = m
			s.data = append(append([]byte(nil), s.data...), t.data...)
			drop(j)
		case 5: // Push + Pop round trip
			hdr := seededBytes(rnd, 1+rnd.Intn(40))
			m, err := s.ctx.Push(s.m, hdr)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d Push(%d): %v", step, len(hdr), err)
			}
			got, rest, err := s.ctx.Pop(m, len(hdr))
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d Pop(%d): %v", step, len(hdr), err)
			}
			if !bytes.Equal(got, hdr) {
				return fmt.Errorf("aggregate conformance: step %d Pop returned %x..., pushed %x...", step, head(got), head(hdr))
			}
			s.m = rest
		case 6: // Transfer downstream + ViewFor + sender Free
			to := g.nextOf(s)
			if to == nil {
				continue
			}
			if err := s.m.Transfer(s.holder, to); err != nil {
				return fmt.Errorf("aggregate conformance: step %d Transfer %s->%s: %v", step, s.holder, to, err)
			}
			v, err := s.m.ViewFor(to)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d ViewFor(%s): %v", step, to, err)
			}
			if err := s.m.Free(s.holder); err != nil {
				return fmt.Errorf("aggregate conformance: step %d sender Free(%s): %v", step, s.holder, err)
			}
			s.m, s.holder, s.moved = v, to, true
		case 7: // Clone then free the clone
			cl, err := s.m.Clone(s.holder)
			if err != nil {
				return fmt.Errorf("aggregate conformance: step %d Clone: %v", step, err)
			}
			if err := g.verify(fmt.Sprintf("step %d clone", step), &aslot{m: cl, data: s.data, holder: s.holder}); err != nil {
				return err
			}
			if err := cl.Free(s.holder); err != nil {
				return fmt.Errorf("aggregate conformance: step %d clone Free: %v", step, err)
			}
		case 8: // ReadAll compare
			if err := g.verify(fmt.Sprintf("step %d", step), s); err != nil {
				return err
			}
		case 9: // Free
			if err := s.m.Free(s.holder); err != nil {
				return fmt.Errorf("aggregate conformance: step %d Free(%s): %v", step, s.holder, err)
			}
			drop(i)
		}
		if err := g.mgr.CheckInvariants(); err != nil {
			return fmt.Errorf("aggregate conformance: step %d invariants: %v", step, err)
		}
	}

	// Final content sweep, then drive to quiescence: free every view,
	// close both contexts, deliver all notices, and demand convergence
	// (zero live fbufs, zero queued notices) — the leak oracle.
	for i := range g.slots {
		if err := g.verify("final", &g.slots[i]); err != nil {
			return err
		}
	}
	for i := range g.slots {
		s := &g.slots[i]
		if err := s.m.Free(s.holder); err != nil {
			return fmt.Errorf("aggregate conformance: final Free(%s): %v", s.holder, err)
		}
	}
	g.slots = nil
	if err := g.ctxA.Close(); err != nil {
		return fmt.Errorf("aggregate conformance: ctxA.Close: %v", err)
	}
	if err := g.ctxB.Close(); err != nil {
		return fmt.Errorf("aggregate conformance: ctxB.Close: %v", err)
	}
	doms := []*domain.Domain{g.reg.Kernel(), g.a, g.b, g.cdom}
	for _, h := range doms {
		for _, o := range doms {
			g.mgr.DeliverNotices(h, o)
		}
	}
	if err := g.mgr.CheckConverged(); err != nil {
		return fmt.Errorf("aggregate conformance: seed %d leaked: %v", seed, err)
	}
	return nil
}
