package conformance

import (
	"testing"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// noticeRig is one half of the directed equivalence check: a two-domain
// cached path whose frees all queue deallocation notices at the holder.
type noticeRig struct {
	clk  *simtime.Clock
	sys  *vm.System
	mgr  *core.Manager
	a, b *domain.Domain
	p    *core.DataPath
}

func newNoticeRig(t *testing.T) *noticeRig {
	t.Helper()
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), confFrames, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManager(sys, reg)
	// Keep the explicit-overflow path out of the way: every queued notice
	// waits for whichever delivery mechanism the rig under test uses.
	mgr.NoticeLimit = 1 << 20
	a, b := reg.New("A"), reg.New("B")
	mgr.AttachDomain(a)
	mgr.AttachDomain(b)
	p, err := mgr.NewPath("equiv", core.CachedVolatile(), 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	p.SetQuota(64)
	return &noticeRig{clk: clk, sys: sys, mgr: mgr, a: a, b: b, p: p}
}

// churn allocates n fbufs, transfers them A->B, and frees them at both
// ends, leaving n deallocation notices queued at holder B for owner A.
func (r *noticeRig) churn(t *testing.T, n int) []*core.Fbuf {
	t.Helper()
	out := make([]*core.Fbuf, n)
	for i := 0; i < n; i++ {
		fb, err := r.p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.mgr.Transfer(fb, r.a, r.b); err != nil {
			t.Fatal(err)
		}
		if err := r.mgr.Free(fb, r.a); err != nil {
			t.Fatal(err)
		}
		if err := r.mgr.Free(fb, r.b); err != nil {
			t.Fatal(err)
		}
		out[i] = fb
	}
	return out
}

// TestRingNoticeEquivalence is the coalescing oracle in directed form: the
// same free stream delivered (a) piggybacked per reply via DeliverNotices
// and (b) coalesced into ring completion entries via CollectNotices /
// Complete / DrainCompletions / RetireNotices must leave the two
// facilities in identical states — same recycle count, same free-list
// reuse order (checked by allocation identity), no lost or duplicated
// frees. Only the delivery-mechanism counters may differ (piggy vs ring).
func TestRingNoticeEquivalence(t *testing.T) {
	piggy := newNoticeRig(t)
	ring := newNoticeRig(t)
	pr, err := rings.NewPair(ring.sys, "equiv", 4, ring.clk.Now, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	const rounds, perRound = 3, 5
	for round := 0; round < rounds; round++ {
		piggy.churn(t, perRound)
		ring.churn(t, perRound)

		piggy.mgr.DeliverNotices(piggy.b, piggy.a)

		batch := ring.mgr.CollectNotices(ring.b, ring.a)
		if len(batch) != perRound {
			t.Fatalf("round %d: collected %d notices, want %d", round, len(batch), perRound)
		}
		if err := pr.Complete(rings.Completion{Op: "notices", Notices: len(batch), Payload: batch}); err != nil {
			t.Fatal(err)
		}
		pr.DrainCompletions(func(c rings.Completion) {
			ring.mgr.RetireNotices(c.Payload.([]*core.Fbuf))
		})
	}

	ps, rs := piggy.mgr.Snapshot(), ring.mgr.Snapshot()
	if ps.NoticesPiggy != rs.NoticesRing {
		t.Errorf("delivered counts differ: piggy rig %d piggybacked, ring rig %d coalesced",
			ps.NoticesPiggy, rs.NoticesRing)
	}
	if rs.NoticesPiggy != 0 || ps.NoticesRing != 0 {
		t.Errorf("cross-mechanism leakage: piggy rig ring=%d, ring rig piggy=%d",
			ps.NoticesRing, rs.NoticesPiggy)
	}
	for _, ch := range []struct {
		name      string
		got, want uint64
	}{
		{"NoticesQueued", rs.NoticesQueued, ps.NoticesQueued},
		{"Recycles", rs.Recycles, ps.Recycles},
		{"Frees", rs.Frees, ps.Frees},
		{"Allocs", rs.Allocs, ps.Allocs},
		{"CacheHits", rs.CacheHits, ps.CacheHits},
	} {
		if ch.got != ch.want {
			t.Errorf("stats.%s: ring rig %d, piggy rig %d", ch.name, ch.got, ch.want)
		}
	}
	if st := pr.Stats(); st.NoticesCoalesced != rounds*perRound {
		t.Errorf("ring coalesced %d notices, want %d", st.NoticesCoalesced, rounds*perRound)
	}

	// Free-list order oracle: both facilities must now hand out the same
	// buffers (by region VA) in the same order — a lost, duplicated, or
	// reordered free would skew the LIFO reuse sequence.
	for i := 0; i < rounds*perRound; i++ {
		pf, err := piggy.p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		rf, err := ring.p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if pf.Base != rf.Base {
			t.Fatalf("alloc %d: free-list order diverged: piggy rig va %#x, ring rig va %#x",
				i, uint64(pf.Base), uint64(rf.Base))
		}
	}
	if err := piggy.mgr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := ring.mgr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
