package conformance

// LifecycleRule is one paper rule about the fbuf lifecycle that the
// executable reference model in this package enforces dynamically. The
// catalogue exists so the static analyzer suite and the differential
// oracle cannot drift apart silently: internal/analysis's cross-check
// test asserts every rule here either appears in the fbuflife typestate
// tables (by Name) or carries a documented StaticExclusion explaining why
// compile-time checking is the wrong tool for it.
type LifecycleRule struct {
	// Name is the stable rule identifier, shared verbatim with the Rule
	// tags in internal/analysis/typestate.go.
	Name string
	// Paper is the section of Druschel & Peterson (SOSP 1993) the rule
	// comes from.
	Paper string
	// Desc states the rule in one sentence.
	Desc string
	// StaticExclusion, when non-empty, documents why the fbuflife
	// typestate automaton does not encode this rule — it names the
	// mechanism that owns it instead (the differential model, the chaos
	// sanitizer, or a different analyzer). Empty means the rule must be
	// present in analysis.StaticLifecycleRules().
	StaticExclusion string
}

// LifecycleRules returns the model's lifecycle-rule catalogue. Order is
// stable (documentation order, roughly by paper section).
func LifecycleRules() []LifecycleRule {
	return []LifecycleRule{
		// --- statically checked: these names appear in the fbuflife
		// typestate tables, edge for edge.
		{
			Name:  "alloc-live",
			Paper: "3.2.1",
			Desc:  "allocation hands out a live, writable fbuf; every allocation creates a Free/Transfer obligation",
		},
		{
			Name:  "write-originator-only",
			Paper: "2.1",
			Desc:  "only the originator writes, and only before the fbuf is transferred",
		},
		{
			Name:  "eager-secure-on-transfer",
			Paper: "2.1.3",
			Desc:  "transfer of a non-volatile fbuf revokes the originator's write permission eagerly",
		},
		{
			Name:  "transfer-requires-live",
			Paper: "2.1.3",
			Desc:  "only a live reference can be transferred; copy semantics keep the sender's reference alive, so multicast re-transfer is legal",
		},
		{
			Name:  "transfer-requires-holder",
			Paper: "2.1.3",
			Desc:  "a domain passes an fbuf onward only through an explicit transfer point (no implicit ownership handoff)",
		},
		{
			Name:  "secure-raises-protection",
			Paper: "3.2.4",
			Desc:  "Secure raises protection on a volatile fbuf at a receiver's request; the buffer is read-only to it afterwards",
		},
		{
			Name:  "immutable-after-transfer",
			Paper: "2.1.2",
			Desc:  "a transferred fbuf is immutable: the sender's later writes are protection faults",
		},
		{
			Name:  "free-requires-live",
			Paper: "3.2.1",
			Desc:  "Free drops one domain's live reference; using that reference afterwards is an error",
		},
		{
			Name:  "no-double-free",
			Paper: "3.2.1",
			Desc:  "one reference, one Free: a domain must not drop the same reference twice",
		},

		// --- dynamic-only: the model (or another mechanism) owns these.
		{
			Name:            "secure-volatile-before-read",
			Paper:           "2.1.2",
			Desc:            "a receiver on a volatile path must Secure before trusting the data it reads",
			StaticExclusion: "enforced by the function-local fbufcheck analyzer (its rule 2); fbuflife deliberately does not duplicate it",
		},
		{
			Name:            "lifo-reuse",
			Paper:           "3.2.1",
			Desc:            "the per-path free list is LIFO to improve locality (FIFO when the path opts out)",
			StaticExclusion: "allocation-order prediction needs the concrete free-list history; only the differential model can replay it",
		},
		{
			Name:            "quota-admission",
			Paper:           "3.2.1",
			Desc:            "a path may not carve a new chunk beyond its chunk quota",
			StaticExclusion: "admission depends on runtime allocation counts; a compile-time may-analysis has no bound on them",
		},
		{
			Name:            "region-capacity",
			Paper:           "3.2",
			Desc:            "allocation fails once the shared region has no free chunks",
			StaticExclusion: "capacity exhaustion is a dynamic resource condition, not a control-flow property",
		},
		{
			Name:            "dealloc-notice",
			Paper:           "3.2.1",
			Desc:            "a receiver's Free queues a deallocation notice that rides the next RPC to the owner (piggybacked)",
			StaticExclusion: "notice delivery is asynchronous protocol behaviour; the model tracks the queues exactly",
		},
		{
			Name:            "notice-overflow-explicit",
			Paper:           "3.2.1",
			Desc:            "when the pending-notice queue overflows its threshold, notices are sent explicitly",
			StaticExclusion: "the overflow threshold is a runtime counter; statically every queue length is possible",
		},
		{
			Name:            "reclaim-discards",
			Paper:           "3.2.1",
			Desc:            "reclaiming cached fbufs discards contents, oldest-freed first; a later touch reads back zeros",
			StaticExclusion: "which frames are resident depends on global memory pressure; the model predicts it frame by frame",
		},
		{
			Name:            "crash-reclaim",
			Paper:           "3.3",
			Desc:            "domain termination sweeps every reference the dead domain holds and unwires its mappings",
			StaticExclusion: "domain death is an external event with no compile-time marker",
		},
		{
			Name:            "path-close-drain",
			Paper:           "3.2.1",
			Desc:            "a closed path admits no new allocations and drains in-flight fbufs before its chunks return",
			StaticExclusion: "close/drain interleaves with in-flight transfers; the interleaving explorer owns it",
		},
		{
			Name:            "read-empty-leaf",
			Paper:           "3.2.4",
			Desc:            "reads of never-written pages inside the region hit the shared empty-leaf page and never fault",
			StaticExclusion: "per-page presence is MMU state; reads are deliberately legal from every typestate (see typestate.go)",
		},
	}
}
