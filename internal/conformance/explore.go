package conformance

// Interleaving explorer: runs multi-worker command streams against the
// real stack under systematically varied schedules, checking each
// interleaving against the reference model executed in the same order.
//
// The fbuf facility's functional behavior must form a sequential-
// consistency envelope: whatever order the scheduler picks, the outcome
// of the resulting operation sequence must match the sequential model
// run over that same flattened order. Each worker carries its own
// virtual clock (the PR 4 simulated-SMP pattern from bench/parallel.go),
// and the system's cost sink is swapped to the acting worker's clock
// before every step — so MMU costs accrue per worker exactly as in the
// smp_scaling experiment, and any behavior that leaks simulated-time
// state into functional results shows up as a divergence.

import (
	"fmt"
	"math/rand"

	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// ExploreConfig parameterizes a schedule exploration.
type ExploreConfig struct {
	Workers    int // concurrent command streams (default 2)
	PerWorker  int // commands per stream (default 6)
	Schedules  int // random schedules per seed; 0 = exhaustive only
	Exhaustive bool
	Cfg        Config // hooks + audit cadence for the differential runner
}

// ExploreResult reports a schedule-dependent divergence. Flat is the
// flattened command prefix (in executed order) that reproduces it;
// Schedule is the worker index picked at each step.
type ExploreResult struct {
	Seed     int64
	Schedule []int
	Flat     []Cmd
	Shrunk   []Cmd
	Div      *Divergence
	cfg      Config
}

func (er *ExploreResult) String() string {
	if er == nil || er.Div == nil {
		return "conformance explore: no divergence"
	}
	s := fmt.Sprintf("conformance explore: seed %d schedule %v diverged: %s\n",
		er.Seed, er.Schedule, er.Div.Error())
	_, trace := RunTrace(er.Shrunk, er.Cfg())
	for i, d := range trace {
		s += fmt.Sprintf("  %2d: %s\n", i, d)
	}
	return s
}

// Cfg returns the config the divergence was found under.
func (er *ExploreResult) Cfg() Config { return er.cfg }

// perOpCost is the simulated cost charged to a worker's clock per
// command, on top of whatever MMU costs the operation itself accrues.
const perOpCost = simtime.Duration(100)

// runSchedule executes the given interleaving of per-worker command
// streams on a fresh runner, swapping the system clock sink to the
// acting worker before each step. Returns the divergence (if any) and
// the flattened prefix executed up to and including the failing step.
func runSchedule(streams [][]Cmd, schedule []int, cfg Config) (*Divergence, []Cmd, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, nil, err
	}
	clocks := make([]*simtime.Clock, len(streams))
	for i := range clocks {
		clocks[i] = &simtime.Clock{}
	}
	pos := make([]int, len(streams))
	flat := make([]Cmd, 0, len(schedule))
	for step, w := range schedule {
		if w < 0 || w >= len(streams) || pos[w] >= len(streams[w]) {
			continue // exhausted stream: schedule slot is a no-op
		}
		c := streams[w][pos[w]]
		pos[w]++
		flat = append(flat, c)
		r.sys.SetSink(vm.ClockSink{Clock: clocks[w]})
		clocks[w].Advance(perOpCost)
		r.step = step
		desc, div := r.exec(c)
		if div != nil {
			return div, flat, nil
		}
		if (len(flat))%r.cfg.AuditEvery == 0 {
			if div := r.audit(c, desc+" [audit]"); div != nil {
				return div, flat, nil
			}
		}
	}
	div := r.audit(Cmd{}, "final audit")
	return div, flat, nil
}

// randomSchedule picks, at each step, a uniformly random worker that
// still has commands left.
func randomSchedule(rnd *rand.Rand, workers, perWorker int) []int {
	remaining := make([]int, workers)
	for i := range remaining {
		remaining[i] = perWorker
	}
	total := workers * perWorker
	sched := make([]int, 0, total)
	for len(sched) < total {
		live := make([]int, 0, workers)
		for w, n := range remaining {
			if n > 0 {
				live = append(live, w)
			}
		}
		w := live[rnd.Intn(len(live))]
		remaining[w]--
		sched = append(sched, w)
	}
	return sched
}

// minClockSchedule replays the PR 4 smp_scaling scheduling rule: always
// run the worker with the smallest virtual clock. With a fixed per-op
// cost this degenerates to round-robin, which is exactly the schedule
// the bench harness produces for symmetric workers — included so the
// envelope covers the schedule real experiments actually use.
func minClockSchedule(workers, perWorker int) []int {
	now := make([]simtime.Duration, workers)
	remaining := make([]int, workers)
	for i := range remaining {
		remaining[i] = perWorker
	}
	sched := make([]int, 0, workers*perWorker)
	for len(sched) < workers*perWorker {
		best := -1
		for w := 0; w < workers; w++ {
			if remaining[w] == 0 {
				continue
			}
			if best < 0 || now[w] < now[best] {
				best = w
			}
		}
		remaining[best]--
		now[best] += perOpCost
		sched = append(sched, best)
	}
	return sched
}

// enumSchedules generates every distinct interleaving of `workers`
// streams with `perWorker` commands each — the multinomial
// (workers*perWorker)! / (perWorker!)^workers. Callers must keep the
// bound small (2 workers x 3 commands = 20 interleavings).
func enumSchedules(workers, perWorker int) [][]int {
	var out [][]int
	remaining := make([]int, workers)
	for i := range remaining {
		remaining[i] = perWorker
	}
	cur := make([]int, 0, workers*perWorker)
	var rec func()
	rec = func() {
		done := true
		for w := 0; w < workers; w++ {
			if remaining[w] > 0 {
				done = false
				remaining[w]--
				cur = append(cur, w)
				rec()
				cur = cur[:len(cur)-1]
				remaining[w]++
			}
		}
		if done {
			out = append(out, append([]int(nil), cur...))
		}
	}
	rec()
	return out
}

// Explore runs the interleaving exploration for one seed: per-worker
// command streams derived from the seed, executed under the min-clock
// schedule, ec.Schedules random schedules, and (when ec.Exhaustive) the
// full enumeration. The first schedule-order divergence is shrunk —
// the flattened prefix is itself a sequential command list, so the
// standard delta-debugger applies — and returned; nil means every
// explored interleaving matched the model.
func Explore(seed int64, ec ExploreConfig) (*ExploreResult, error) {
	if ec.Workers <= 0 {
		ec.Workers = 2
	}
	if ec.PerWorker <= 0 {
		ec.PerWorker = 6
	}
	streams := make([][]Cmd, ec.Workers)
	for w := range streams {
		streams[w] = Generate(seed+int64(w)*7919, ec.PerWorker)
	}

	schedules := [][]int{minClockSchedule(ec.Workers, ec.PerWorker)}
	rnd := rand.New(rand.NewSource(seed ^ 0x5eed))
	for i := 0; i < ec.Schedules; i++ {
		schedules = append(schedules, randomSchedule(rnd, ec.Workers, ec.PerWorker))
	}
	if ec.Exhaustive {
		schedules = append(schedules, enumSchedules(ec.Workers, ec.PerWorker)...)
	}

	for _, sched := range schedules {
		div, flat, err := runSchedule(streams, sched, ec.Cfg)
		if err != nil {
			return nil, err
		}
		if div != nil {
			return &ExploreResult{
				Seed:     seed,
				Schedule: append([]int(nil), sched...),
				Flat:     flat,
				Shrunk:   Shrink(flat, ec.Cfg),
				Div:      div,
				cfg:      ec.Cfg,
			}, nil
		}
	}
	return nil, nil
}
