package conformance

import (
	"flag"
	"testing"
)

// -seeds scales the differential seed matrix; CI runs
// `go test ./internal/conformance -run TestConformance -seeds=200`.
var seeds = flag.Int("seeds", 60, "number of differential seeds to run")

const cmdsPerSeed = 250

// TestConformance is the main differential check: seeded command
// sequences run against the model and the real stack in lockstep, with
// full state audits every few commands. Any divergence fails with a
// shrunk counterexample and a replay instruction.
func TestConformance(t *testing.T) {
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		if ce := RunSeed(seed, cmdsPerSeed, Config{}); ce != nil {
			t.Fatalf("%s", ce)
		}
	}
}

// TestConformanceCoverage asserts the generated workload actually
// reaches the interesting machinery — a divergence suite that never
// allocates past a quota or overflows a notice list proves nothing.
func TestConformanceCoverage(t *testing.T) {
	var sum Stats
	n := *seeds
	if n > 40 {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		r, err := newRunner(Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range Generate(seed, 200) {
			r.step = i
			if _, div := r.exec(c); div != nil {
				t.Fatalf("seed %d: %v", seed, div)
			}
		}
		st := r.mgr.Snapshot()
		sum.Allocs += st.Allocs
		sum.CacheHits += st.CacheHits
		sum.Transfers += st.Transfers
		sum.MappingsBuilt += st.MappingsBuilt
		sum.Secures += st.Secures
		sum.NoticesQueued += st.NoticesQueued
		sum.NoticesPiggy += st.NoticesPiggy
		sum.NoticesExplicit += st.NoticesExplicit
		sum.NoticesRing += st.NoticesRing
		sum.FramesReclaimed += st.FramesReclaimed
		sum.LazyRefills += st.LazyRefills
		sum.AllocFailures += st.AllocFailures
	}
	checks := []struct {
		name string
		v    uint64
	}{
		{"Allocs", sum.Allocs}, {"CacheHits", sum.CacheHits},
		{"Transfers", sum.Transfers}, {"MappingsBuilt", sum.MappingsBuilt},
		{"Secures", sum.Secures}, {"NoticesQueued", sum.NoticesQueued},
		{"NoticesPiggy", sum.NoticesPiggy}, {"NoticesExplicit", sum.NoticesExplicit},
		{"NoticesRing", sum.NoticesRing},
		{"FramesReclaimed", sum.FramesReclaimed}, {"LazyRefills", sum.LazyRefills},
		{"AllocFailures", sum.AllocFailures},
	}
	for _, c := range checks {
		if c.v == 0 {
			t.Errorf("workload never exercised %s", c.name)
		}
	}
}

// TestConformanceShrinksInjectedBug is the acceptance check from the
// issue: a seeded semantic bug — skipping the §3.1 write-permission
// revoke (eager secure) on Transfer — must be caught and shrunk to a
// counterexample of at most 8 commands.
func TestConformanceShrinksInjectedBug(t *testing.T) {
	cfg := Config{Hooks: Hooks{SkipRevokeOnTransfer: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected skip-revoke-on-transfer bug was never caught")
	}
	if len(ce.Shrunk) > 8 {
		t.Fatalf("counterexample not minimal: %d commands\n%s", len(ce.Shrunk), ce)
	}
	t.Logf("caught with %d-command counterexample:\n%s", len(ce.Shrunk), ce)
}

// TestConformanceCatchesFIFOReuse injects the wrong free-list
// discipline (FIFO where the path demands LIFO §3.2.2 and vice versa);
// the pointer-identity allocation oracle must notice.
func TestConformanceCatchesFIFOReuse(t *testing.T) {
	cfg := Config{Hooks: Hooks{FIFOReuse: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected free-list order bug was never caught")
	}
	t.Logf("caught with %d-command counterexample", len(ce.Shrunk))
}

// TestConformanceCatchesSkipQuota injects a model that forgets the §3.2
// chunk quota; the error-class oracle must notice the implementation
// refusing an allocation the model allows.
func TestConformanceCatchesSkipQuota(t *testing.T) {
	cfg := Config{Hooks: Hooks{SkipQuota: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected skip-quota bug was never caught")
	}
	t.Logf("caught with %d-command counterexample", len(ce.Shrunk))
}

// TestConformanceCatchesSkipEpochWait injects the epoch-reclaim crash-rule
// bug: a model that retires parked frames without waiting for a pinned
// worker's epoch to drain. The real stack keeps such frames parked, so the
// retire-count oracle (or the parked-frame audit) must diverge — and the
// counterexample must shrink to a handful of commands.
func TestConformanceCatchesSkipEpochWait(t *testing.T) {
	cfg := Config{Hooks: Hooks{SkipEpochWait: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected skip-epoch-wait bug was never caught")
	}
	if len(ce.Shrunk) > 8 {
		t.Fatalf("counterexample not minimal: %d commands\n%s", len(ce.Shrunk), ce)
	}
	t.Logf("caught with %d-command counterexample:\n%s", len(ce.Shrunk), ce)
}

// TestDepotEpochDirected drives the depot and epoch machinery through
// directed sequences the random mix reaches only occasionally: charge past
// the one-unit stack bound into the shard spill, discharge it all back,
// advance with a pinned worker (nothing may retire), crash a domain with
// depot inventory outstanding, and reclaim with the released epoch
// draining. Every step runs under the full-audit cadence of 1 so the
// depot-inventory invariant and parked-frame count are checked after each
// command.
func TestDepotEpochDirected(t *testing.T) {
	scripts := map[string][]Cmd{
		// Fill the pipe free list, charge twice (stack then spill),
		// discharge everything, and re-allocate: the identity oracle proves
		// the depot round-trip preserved the free-list contents.
		"charge-spill-discharge": {
			{Op: OpAllocBatch, A: 0, B: 2},       // pipe x3
			{Op: OpAllocBatch, A: 0, B: 2},       // pipe x3
			{Op: OpFreeBatch, A: 255, B: 255, C: 2},
			{Op: OpFreeBatch, A: 0, B: 255, C: 2},
			{Op: OpDepotExchange, A: 0, B: 0, C: 1}, // charge 2: unit stack
			{Op: OpDepotExchange, A: 0, B: 0, C: 1}, // charge 2: spills to shard
			{Op: OpDepotExchange, A: 0, B: 0, C: 0}, // charge 1: spills to next shard
			{Op: OpDepotExchange, A: 0, B: 1},       // discharge all
			{Op: OpAllocBatch, A: 0, B: 2},
		},
		// Pin the worker's epoch, tear frames down (evict), and advance:
		// nothing may retire until the worker exits and a second advance
		// proves the epoch drained.
		"pinned-epoch-holds-frames": {
			{Op: OpAlloc, A: 0},
			{Op: OpAlloc, A: 0},
			{Op: OpEpochAdvance, A: 2}, // enter
			{Op: OpFree, A: 255, B: 255},
			{Op: OpFree, A: 254, B: 255},
			{Op: OpEvict, A: 0},        // tears down free list: parks frames
			{Op: OpEpochAdvance, A: 0}, // advance: pinned worker holds them
			{Op: OpEpochAdvance, A: 3}, // exit
			{Op: OpEpochAdvance, A: 1}, // advance: epoch drained, frames retire
		},
		// Crash the path's originator while the depot holds inventory: the
		// close must drain the depot through teardown, with the parked
		// frames retiring only on a later advance.
		"crash-with-depot-inventory": {
			{Op: OpAllocBatch, A: 0, B: 2},
			{Op: OpFreeBatch, A: 255, B: 255, C: 2},
			{Op: OpDepotExchange, A: 0, B: 0, C: 1}, // charge 2
			{Op: OpCrash, A: 0},                     // A dies: pipe closes, depot drains
			{Op: OpEpochAdvance, A: 0},
			{Op: OpReclaim, A: 3},
			{Op: OpEpochAdvance, A: 0},
		},
	}
	for name, cmds := range scripts {
		if div := Run(cmds, Config{AuditEvery: 1}); div != nil {
			t.Errorf("%s: %v", name, div)
		}
	}
}

// TestExploreDepotEpoch exhaustively interleaves a depot/epoch stream with
// an alloc/free/reclaim/crash stream: every schedule of the two 4-command
// streams (70 interleavings) must match the sequential model over its
// flattened order — the depot exchange and epoch advance are single
// serializable steps with no schedule-dependent behavior.
func TestExploreDepotEpoch(t *testing.T) {
	streams := [][]Cmd{
		{
			{Op: OpDepotExchange, A: 0, B: 0, C: 1}, // charge pipe
			{Op: OpEpochAdvance, A: 2},              // enter
			{Op: OpDepotExchange, A: 0, B: 1},       // discharge pipe
			{Op: OpEpochAdvance, A: 0},              // advance
		},
		{
			{Op: OpAllocBatch, A: 0, B: 1},      // pipe x2
			{Op: OpFreeBatch, A: 255, B: 255, C: 1},
			{Op: OpReclaim, A: 1},
			{Op: OpCrash, A: 2},                 // C dies: pipe + lazy close
		},
	}
	for _, sched := range enumSchedules(2, 4) {
		div, flat, err := runSchedule(streams, sched, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if div != nil {
			t.Fatalf("schedule %v diverged: %v\nflat prefix: %v", sched, div, flat)
		}
	}
}

// TestExploreRandom runs the interleaving explorer over random and
// min-clock schedules: per-worker virtual clocks, sink swapped before
// every step. The facility's functional behavior must be identical
// under every schedule (sequential-consistency envelope).
func TestExploreRandom(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		er, err := Explore(seed, ExploreConfig{Workers: 3, PerWorker: 10, Schedules: 8})
		if err != nil {
			t.Fatal(err)
		}
		if er != nil {
			t.Fatalf("%s", er)
		}
	}
}

// TestExploreExhaustive enumerates every interleaving of two 3-command
// streams (20 schedules) for a batch of seeds.
func TestExploreExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		er, err := Explore(seed, ExploreConfig{Workers: 2, PerWorker: 3, Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if er != nil {
			t.Fatalf("%s", er)
		}
	}
}

// TestExploreCatchesInjectedBug: semantic mutations must surface through
// schedule exploration too, shrunk over the flattened schedule order.
func TestExploreCatchesInjectedBug(t *testing.T) {
	var caught *ExploreResult
	for seed := int64(1); seed <= 20 && caught == nil; seed++ {
		er, err := Explore(seed, ExploreConfig{
			Workers: 2, PerWorker: 8, Schedules: 4,
			Cfg: Config{Hooks: Hooks{SkipRevokeOnTransfer: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		caught = er
	}
	if caught == nil {
		t.Fatal("injected bug never surfaced through exploration")
	}
	t.Logf("caught under schedule %v, shrunk to %d commands", caught.Schedule, len(caught.Shrunk))
}

// TestAggregateConformance runs the aggregate-layer byte-slice
// differential: DAG edits must preserve content, and the rig must
// converge to zero live fbufs once everything is freed.
func TestAggregateConformance(t *testing.T) {
	n := *seeds
	if n > 40 {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := RunAggregate(seed, 150); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzConformance feeds arbitrary byte strings to the differential
// runner: every 5-byte group decodes to a command (the encoding is
// total), so the fuzzer explores the command space directly, with the
// generated seed corpus as the starting population.
func FuzzConformance(f *testing.F) {
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(encodeCmds(Generate(seed, 40)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cmds := decodeCmds(data)
		if len(cmds) == 0 {
			return
		}
		if div := Run(cmds, Config{}); div != nil {
			t.Fatalf("divergence: %v", div)
		}
	})
}

func encodeCmds(cmds []Cmd) []byte {
	out := make([]byte, 0, len(cmds)*5)
	for _, c := range cmds {
		out = append(out, c.Op, c.A, c.B, c.C, c.D)
	}
	return out
}

func decodeCmds(data []byte) []Cmd {
	var cmds []Cmd
	for i := 0; i+5 <= len(data) && len(cmds) < 400; i += 5 {
		cmds = append(cmds, Cmd{Op: data[i], A: data[i+1], B: data[i+2], C: data[i+3], D: data[i+4]})
	}
	return cmds
}
