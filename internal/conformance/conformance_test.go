package conformance

import (
	"flag"
	"testing"
)

// -seeds scales the differential seed matrix; CI runs
// `go test ./internal/conformance -run TestConformance -seeds=200`.
var seeds = flag.Int("seeds", 60, "number of differential seeds to run")

const cmdsPerSeed = 250

// TestConformance is the main differential check: seeded command
// sequences run against the model and the real stack in lockstep, with
// full state audits every few commands. Any divergence fails with a
// shrunk counterexample and a replay instruction.
func TestConformance(t *testing.T) {
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		if ce := RunSeed(seed, cmdsPerSeed, Config{}); ce != nil {
			t.Fatalf("%s", ce)
		}
	}
}

// TestConformanceCoverage asserts the generated workload actually
// reaches the interesting machinery — a divergence suite that never
// allocates past a quota or overflows a notice list proves nothing.
func TestConformanceCoverage(t *testing.T) {
	var sum Stats
	n := *seeds
	if n > 40 {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		r, err := newRunner(Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range Generate(seed, 200) {
			r.step = i
			if _, div := r.exec(c); div != nil {
				t.Fatalf("seed %d: %v", seed, div)
			}
		}
		st := r.mgr.Snapshot()
		sum.Allocs += st.Allocs
		sum.CacheHits += st.CacheHits
		sum.Transfers += st.Transfers
		sum.MappingsBuilt += st.MappingsBuilt
		sum.Secures += st.Secures
		sum.NoticesQueued += st.NoticesQueued
		sum.NoticesPiggy += st.NoticesPiggy
		sum.NoticesExplicit += st.NoticesExplicit
		sum.NoticesRing += st.NoticesRing
		sum.FramesReclaimed += st.FramesReclaimed
		sum.LazyRefills += st.LazyRefills
		sum.AllocFailures += st.AllocFailures
	}
	checks := []struct {
		name string
		v    uint64
	}{
		{"Allocs", sum.Allocs}, {"CacheHits", sum.CacheHits},
		{"Transfers", sum.Transfers}, {"MappingsBuilt", sum.MappingsBuilt},
		{"Secures", sum.Secures}, {"NoticesQueued", sum.NoticesQueued},
		{"NoticesPiggy", sum.NoticesPiggy}, {"NoticesExplicit", sum.NoticesExplicit},
		{"NoticesRing", sum.NoticesRing},
		{"FramesReclaimed", sum.FramesReclaimed}, {"LazyRefills", sum.LazyRefills},
		{"AllocFailures", sum.AllocFailures},
	}
	for _, c := range checks {
		if c.v == 0 {
			t.Errorf("workload never exercised %s", c.name)
		}
	}
}

// TestConformanceShrinksInjectedBug is the acceptance check from the
// issue: a seeded semantic bug — skipping the §3.1 write-permission
// revoke (eager secure) on Transfer — must be caught and shrunk to a
// counterexample of at most 8 commands.
func TestConformanceShrinksInjectedBug(t *testing.T) {
	cfg := Config{Hooks: Hooks{SkipRevokeOnTransfer: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected skip-revoke-on-transfer bug was never caught")
	}
	if len(ce.Shrunk) > 8 {
		t.Fatalf("counterexample not minimal: %d commands\n%s", len(ce.Shrunk), ce)
	}
	t.Logf("caught with %d-command counterexample:\n%s", len(ce.Shrunk), ce)
}

// TestConformanceCatchesFIFOReuse injects the wrong free-list
// discipline (FIFO where the path demands LIFO §3.2.2 and vice versa);
// the pointer-identity allocation oracle must notice.
func TestConformanceCatchesFIFOReuse(t *testing.T) {
	cfg := Config{Hooks: Hooks{FIFOReuse: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected free-list order bug was never caught")
	}
	t.Logf("caught with %d-command counterexample", len(ce.Shrunk))
}

// TestConformanceCatchesSkipQuota injects a model that forgets the §3.2
// chunk quota; the error-class oracle must notice the implementation
// refusing an allocation the model allows.
func TestConformanceCatchesSkipQuota(t *testing.T) {
	cfg := Config{Hooks: Hooks{SkipQuota: true}}
	var ce *Counterexample
	for seed := int64(1); seed <= 50; seed++ {
		if ce = RunSeed(seed, cmdsPerSeed, cfg); ce != nil {
			break
		}
	}
	if ce == nil {
		t.Fatal("injected skip-quota bug was never caught")
	}
	t.Logf("caught with %d-command counterexample", len(ce.Shrunk))
}

// TestExploreRandom runs the interleaving explorer over random and
// min-clock schedules: per-worker virtual clocks, sink swapped before
// every step. The facility's functional behavior must be identical
// under every schedule (sequential-consistency envelope).
func TestExploreRandom(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		er, err := Explore(seed, ExploreConfig{Workers: 3, PerWorker: 10, Schedules: 8})
		if err != nil {
			t.Fatal(err)
		}
		if er != nil {
			t.Fatalf("%s", er)
		}
	}
}

// TestExploreExhaustive enumerates every interleaving of two 3-command
// streams (20 schedules) for a batch of seeds.
func TestExploreExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		er, err := Explore(seed, ExploreConfig{Workers: 2, PerWorker: 3, Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if er != nil {
			t.Fatalf("%s", er)
		}
	}
}

// TestExploreCatchesInjectedBug: semantic mutations must surface through
// schedule exploration too, shrunk over the flattened schedule order.
func TestExploreCatchesInjectedBug(t *testing.T) {
	var caught *ExploreResult
	for seed := int64(1); seed <= 20 && caught == nil; seed++ {
		er, err := Explore(seed, ExploreConfig{
			Workers: 2, PerWorker: 8, Schedules: 4,
			Cfg: Config{Hooks: Hooks{SkipRevokeOnTransfer: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		caught = er
	}
	if caught == nil {
		t.Fatal("injected bug never surfaced through exploration")
	}
	t.Logf("caught under schedule %v, shrunk to %d commands", caught.Schedule, len(caught.Shrunk))
}

// TestAggregateConformance runs the aggregate-layer byte-slice
// differential: DAG edits must preserve content, and the rig must
// converge to zero live fbufs once everything is freed.
func TestAggregateConformance(t *testing.T) {
	n := *seeds
	if n > 40 {
		n = 40
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := RunAggregate(seed, 150); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzConformance feeds arbitrary byte strings to the differential
// runner: every 5-byte group decodes to a command (the encoding is
// total), so the fuzzer explores the command space directly, with the
// generated seed corpus as the starting population.
func FuzzConformance(f *testing.F) {
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(encodeCmds(Generate(seed, 40)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cmds := decodeCmds(data)
		if len(cmds) == 0 {
			return
		}
		if div := Run(cmds, Config{}); div != nil {
			t.Fatalf("divergence: %v", div)
		}
	})
}

func encodeCmds(cmds []Cmd) []byte {
	out := make([]byte, 0, len(cmds)*5)
	for _, c := range cmds {
		out = append(out, c.Op, c.A, c.B, c.C, c.D)
	}
	return out
}

func decodeCmds(data []byte) []Cmd {
	var cmds []Cmd
	for i := 0; i+5 <= len(data) && len(cmds) < 400; i += 5 {
		cmds = append(cmds, Cmd{Op: data[i], A: data[i+1], B: data[i+2], C: data[i+3], D: data[i+4]})
	}
	return cmds
}
