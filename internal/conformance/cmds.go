package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"fbufs/internal/core"
	"fbufs/internal/domain"
	"fbufs/internal/machine"
	"fbufs/internal/mem"
	"fbufs/internal/rings"
	"fbufs/internal/simtime"
	"fbufs/internal/vm"
)

// Cmd is one facility operation in a 5-byte total encoding: every byte
// string decodes to an executable command (operands are taken modulo the
// current domain/path/slot counts), which is what makes delta-debugging
// shrinking sound — any subsequence of a failing sequence is itself a
// valid sequence. The same encoding backs the FuzzConformance target.
type Cmd struct {
	Op, A, B, C, D byte
}

// Command opcodes (Op is taken modulo NumOps).
const (
	OpAlloc = iota
	OpAllocBatch
	OpTransfer
	OpSecure
	OpWrite
	OpRead
	OpFree
	OpFreeBatch
	OpDupRef
	OpSetQuota
	OpCrash
	OpReclaim
	OpDeliver
	OpEvict
	OpRingSubmit
	OpRingDrain
	OpDepotExchange
	OpEpochAdvance
	NumOps
)

// Config parameterizes a differential run.
type Config struct {
	// Hooks mutates the reference model (test harness self-checks only).
	Hooks Hooks
	// AuditEvery is the full-state audit cadence in commands (default 8).
	AuditEvery int
}

// Divergence reports the first point where model and implementation
// disagree. It doubles as the counterexample detail for reports.
type Divergence struct {
	Step   int
	Cmd    Cmd
	Desc   string // decoded operation, e.g. "Transfer s3 A->B"
	Detail string
}

// Error formats the divergence for test failures.
func (d *Divergence) Error() string {
	return fmt.Sprintf("step %d (%s): %s", d.Step, d.Desc, d.Detail)
}

// The fixed differential topology. Small geometry keeps every limit —
// chunk exhaustion, quotas, notice overflow — inside reach of short
// command sequences.
const (
	confChunkPages   = 4
	confNumChunks    = 6
	confDefaultQuota = 2
	confNoticeLimit  = 2
	confFrames       = 4096
	confNumDoms      = 4 // kernel, A, B, C
	// confRingDepth keeps the per-pair completion ring tiny so random
	// sequences reach the ring-full skip path.
	confRingDepth = 2
	// Depot geometry on cached paths: 2-fbuf units, 2 shards, and a
	// one-unit stack so a second charge spills into the shards.
	confDepotUnit    = 2
	confDepotShards  = 2
	confDepotMaxFull = 1
)

// pair links a model fbuf to its real counterpart; the link itself is an
// oracle (free-list order bugs surface as identity mismatches on reuse).
type pair struct {
	mf *MFbuf
	rf *core.Fbuf
}

// runner executes commands against the real stack and the model in
// lockstep.
type runner struct {
	cfg    Config
	clk    *simtime.Clock
	sys    *vm.System
	mgr    *core.Manager
	reg    *domain.Registry
	doms   []*domain.Domain
	paths  []*core.DataPath
	model  *Model
	mpaths []*MPath
	pairs  []pair
	rings  map[noticeKey]*rings.Pair
	epoch  *core.EpochWorker
	step   int
}

// newRunner builds a fresh system + model over the fixed topology:
//
//	p0 "pipe": A->B->C  cached volatile, populated, 2 pages
//	p1 "ctrl": A->B     cached non-volatile, populated, FIFO, 1 page
//	p2 "raw":  B->C     uncached non-volatile, populated, 2 pages
//	p3 "kern": K->A     cached volatile, populated, 1 page (trusted orig)
//	p4 "lazy": A->C     cached volatile integrated, unpopulated, 2 pages
func newRunner(cfg Config) (*runner, error) {
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = 8
	}
	clk := &simtime.Clock{}
	sys := vm.NewSystem(machine.DecStation5000(), confFrames, vm.ClockSink{Clock: clk})
	reg := domain.NewRegistry(sys)
	mgr := core.NewManagerGeometry(sys, reg, confChunkPages, confNumChunks)
	mgr.DefaultQuota = confDefaultQuota
	mgr.NoticeLimit = confNoticeLimit

	r := &runner{cfg: cfg, clk: clk, sys: sys, mgr: mgr, reg: reg,
		rings: map[noticeKey]*rings.Pair{}}
	kern := reg.Kernel()
	a := reg.New("A")
	b := reg.New("B")
	c := reg.New("C")
	r.doms = []*domain.Domain{kern, a, b, c}

	r.model = NewModel(confChunkPages, confNumChunks, confDefaultQuota, confNoticeLimit)
	r.model.Hooks = cfg.Hooks
	r.model.RingDepth = confRingDepth
	for _, d := range r.doms {
		r.model.AddDomain(int(d.ID), d.Name, d.Trusted)
	}

	type pathSpec struct {
		name  string
		opts  core.Options
		pages int
		doms  []*domain.Domain
	}
	specs := []pathSpec{
		{"pipe", core.Options{Cached: true, Volatile: true, Populate: true}, 2, []*domain.Domain{a, b, c}},
		{"ctrl", core.Options{Cached: true, Populate: true, FIFO: true}, 1, []*domain.Domain{a, b}},
		{"raw", core.Options{Populate: true}, 2, []*domain.Domain{b, c}},
		{"kern", core.Options{Cached: true, Volatile: true, Populate: true}, 1, []*domain.Domain{kern, a}},
		{"lazy", core.Options{Cached: true, Volatile: true, Integrated: true}, 2, []*domain.Domain{a, c}},
	}
	for _, s := range specs {
		p, err := mgr.NewPath(s.name, s.opts, s.pages, s.doms...)
		if err != nil {
			return nil, fmt.Errorf("conformance: rig path %s: %w", s.name, err)
		}
		ids := make([]int, len(s.doms))
		for i, d := range s.doms {
			ids[i] = int(d.ID)
		}
		mp := r.model.AddPath(p.ID, s.name, s.opts, s.pages, ids...)
		// Cached paths get a depot in conformance geometry: tiny units and
		// a one-unit stack so charge sequences reach the spill path inside
		// a handful of commands.
		if s.opts.Cached {
			d := p.EnableDepot(confDepotUnit, confDepotShards)
			d.SetMaxFull(confDepotMaxFull)
			mp.Depot = &MDepot{
				Unit: confDepotUnit, MaxFull: confDepotMaxFull,
				Shards: make([][]*MFbuf, confDepotShards),
			}
		}
		r.paths = append(r.paths, p)
		r.mpaths = append(r.mpaths, mp)
	}
	// One epoch worker: registering it flips every frame release in the
	// real stack to epoch-deferred, and the model's epoch starts at 1 to
	// match RegisterEpochWorker.
	r.epoch = mgr.RegisterEpochWorker()
	r.model.Epoch = 1
	return r, nil
}

// Operand decoding: total functions of the current state.

func (r *runner) pathAt(b byte) (int, *core.DataPath, *MPath) {
	i := int(b) % len(r.paths)
	return i, r.paths[i], r.mpaths[i]
}

func (r *runner) domAt(b byte) (*domain.Domain, int) {
	d := r.doms[int(b)%confNumDoms]
	return d, int(d.ID)
}

// holderDomAt biases the high byte range toward the slot's current
// holders, so transfers and frees land on domains that actually hold a
// reference often enough to drive the free/notice flow; the low half
// stays uniform so not-holder errors keep getting exercised.
func (r *runner) holderDomAt(b byte, mf *MFbuf) (*domain.Domain, int) {
	if b >= 128 {
		var ids []int
		for id, n := range mf.Refs {
			if n > 0 {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		if len(ids) > 0 {
			id := ids[int(b)%len(ids)]
			for _, d := range r.doms {
				if int(d.ID) == id {
					return d, id
				}
			}
		}
	}
	return r.domAt(b)
}

// userDomAt excludes the kernel (which never crashes).
func (r *runner) userDomAt(b byte) (*domain.Domain, int) {
	d := r.doms[1+int(b)%(confNumDoms-1)]
	return d, int(d.ID)
}

// slotAt decodes a slot index. The high half of the byte range addresses
// the most recently allocated slots, so random sequences form the paper's
// natural alloc→transfer→free chains (and thereby reach the notice
// machinery) far more often than uniform slot choice would.
func (r *runner) slotAt(b byte) int {
	n := len(r.pairs)
	if n == 0 {
		return -1
	}
	if b >= 128 {
		w := 4
		if w > n {
			w = n
		}
		return n - 1 - int(b)%w
	}
	return int(b) % n
}

// span decodes a deterministic access window inside an fbuf, occasionally
// straddling a page boundary.
func span(pages int, c, d byte) (off, n int) {
	size := pages * machine.PageSize
	n = 16
	if d%4 == 0 && pages > 1 {
		off = machine.PageSize - 8
	} else {
		pg := int(c) % pages
		off = pg*machine.PageSize + int(d%7)*16
	}
	if off+n > size {
		off = size - n
	}
	return off, n
}

var quotaTable = []int{-1, 0, 1, 2, 3}
var reclaimTable = []int{1, 2, 4, 1024}

// ring returns (lazily creating) the real ring pair for a (holder, owner)
// notice direction, mirroring the model's Rings map. Capacity matches the
// model's RingDepth so full/empty decisions stay comparable.
func (r *runner) ring(holder, owner int) *rings.Pair {
	k := noticeKey{holder: holder, owner: owner}
	if pr, ok := r.rings[k]; ok {
		return pr
	}
	pr, err := rings.NewPair(r.sys, fmt.Sprintf("conf-%d-%d", holder, owner),
		confRingDepth, r.clk.Now, holder, owner)
	if err != nil {
		panic("conformance: ring pair: " + err.Error()) // capacity is a constant power of two
	}
	r.rings[k] = pr
	return pr
}

// fail constructs a divergence for the current step.
func (r *runner) fail(c Cmd, desc, format string, args ...interface{}) *Divergence {
	return &Divergence{
		Step: r.step, Cmd: c, Desc: desc,
		Detail: fmt.Sprintf(format, args...) + " | model: " + r.model.LiveSummary(),
	}
}

// registerAlloc checks the allocation oracle: a reused model fbuf must
// come back as the very same real fbuf (free-list order), a fresh one must
// land at the exact predicted VA (carve layout).
func (r *runner) registerAlloc(c Cmd, desc string, mf *MFbuf, rf *core.Fbuf) *Divergence {
	if mf.Tag >= 0 {
		if r.pairs[mf.Tag].rf != rf {
			return r.fail(c, desc, "free-list reuse order: model predicts slot s%d (va %#x), implementation returned va %#x",
				mf.Tag, mf.VA, uint64(rf.Base))
		}
		return nil
	}
	if uint64(rf.Base) != mf.VA {
		return r.fail(c, desc, "carve layout: model predicts va %#x, implementation returned %#x", mf.VA, uint64(rf.Base))
	}
	r.pairs = append(r.pairs, pair{mf: mf, rf: rf})
	mf.Tag = len(r.pairs) - 1
	return nil
}

// checkSlot diffs one fbuf's architectural state against its model twin.
func (r *runner) checkSlot(c Cmd, desc string, i int) *Divergence {
	mf, rf := r.pairs[i].mf, r.pairs[i].rf
	wantState := core.StateFree
	switch mf.State {
	case StLive:
		wantState = core.StateLive
	case StDraining:
		wantState = core.StateDrainingNotice
	}
	if got := rf.State(); got != wantState {
		return r.fail(c, desc, "s%d state: model %v, implementation %v", i, wantState, got)
	}
	if got, want := rf.Secured(), mf.Secured; got != want {
		return r.fail(c, desc, "s%d secured: model %v, implementation %v", i, want, got)
	}
	total := 0
	for _, n := range mf.Refs {
		total += n
	}
	if got := rf.Refs(); got != total {
		return r.fail(c, desc, "s%d refcount: model %d, implementation %d", i, total, got)
	}
	for _, d := range r.doms {
		if got, want := rf.HeldBy(d), mf.Refs[int(d.ID)] > 0; got != want {
			return r.fail(c, desc, "s%d held-by %s: model %v, implementation %v", i, d.Name, want, got)
		}
	}
	for pg := 0; pg < mf.Pages; pg++ {
		got := rf.FrameAt(pg) != mem.NoFrame
		if got != mf.Present[pg] {
			return r.fail(c, desc, "s%d page %d frame present: model %v, implementation %v", i, pg, mf.Present[pg], got)
		}
	}
	return nil
}

// audit diffs the entire architectural state: every paired fbuf, every
// path's allocator, the full stats vector, and the manager's own
// invariants (including fbsan's when enabled).
func (r *runner) audit(c Cmd, desc string) *Divergence {
	for i := range r.pairs {
		if div := r.checkSlot(c, desc, i); div != nil {
			return div
		}
	}
	for i, rp := range r.paths {
		mp := r.mpaths[i]
		if got, want := rp.FreeListLen(), len(mp.Free); got != want {
			return r.fail(c, desc, "path %s free-list depth: model %d, implementation %d", mp.Name, want, got)
		}
		if got, want := rp.AllocatedCount(), mp.Allocated; got != want {
			return r.fail(c, desc, "path %s lifetime allocs: model %d, implementation %d", mp.Name, want, got)
		}
		if got, want := rp.Quota(), r.model.EffQuota(mp); got != want {
			return r.fail(c, desc, "path %s effective quota: model %d, implementation %d", mp.Name, want, got)
		}
		// Depot-inventory invariant: the depot's fbuf count and per-shard
		// depths must match the model exchange for exchange.
		if d := rp.Depot(); d != nil && mp.Depot != nil {
			if got, want := d.Inventory(), mp.Depot.inventory(); got != want {
				return r.fail(c, desc, "path %s depot inventory: model %d, implementation %d", mp.Name, want, got)
			}
			for s, st := range d.ShardStats() {
				if got, want := st.Depth, len(mp.Depot.Shards[s]); got != want {
					return r.fail(c, desc, "path %s depot shard %d depth: model %d, implementation %d", mp.Name, s, want, got)
				}
			}
		}
	}
	if got, want := r.mgr.EpochNow(), r.model.Epoch; got != want {
		return r.fail(c, desc, "epoch: model %d, implementation %d", want, got)
	}
	if got, want := r.mgr.EpochPending(), r.model.EpochPending(); got != want {
		return r.fail(c, desc, "epoch-parked frames: model %d, implementation %d", want, got)
	}
	real, want := r.mgr.Snapshot(), r.model.Stats
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"Allocs", real.Allocs, want.Allocs},
		{"CacheHits", real.CacheHits, want.CacheHits},
		{"CacheMisses", real.CacheMisses, want.CacheMisses},
		{"Transfers", real.Transfers, want.Transfers},
		{"MappingsBuilt", real.MappingsBuilt, want.MappingsBuilt},
		{"Secures", real.Secures, want.Secures},
		{"Frees", real.Frees, want.Frees},
		{"Recycles", real.Recycles, want.Recycles},
		{"NoticesQueued", real.NoticesQueued, want.NoticesQueued},
		{"NoticesPiggy", real.NoticesPiggy, want.NoticesPiggy},
		{"NoticesExplicit", real.NoticesExplicit, want.NoticesExplicit},
		{"NoticesRing", real.NoticesRing, want.NoticesRing},
		{"FramesReclaimed", real.FramesReclaimed, want.FramesReclaimed},
		{"LazyRefills", real.LazyRefills, want.LazyRefills},
		{"AllocFailures", real.AllocFailures, want.AllocFailures},
		{"PathEvictions", real.PathEvictions, want.PathEvictions},
		{"AdmissionRejects", real.AdmissionRejects, want.AdmissionRejects},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			return r.fail(c, desc, "stats.%s: model %d, implementation %d", ch.name, ch.want, ch.got)
		}
	}
	if err := r.mgr.CheckInvariants(); err != nil {
		return r.fail(c, desc, "implementation invariants: %v", err)
	}
	return nil
}

// exec runs one command on both sides and diffs the outcome. It returns
// the decoded description and a divergence (nil when conformant).
func (r *runner) exec(c Cmd) (string, *Divergence) {
	m := r.model
	switch int(c.Op) % NumOps {
	case OpAlloc:
		_, rp, mp := r.pathAt(c.A)
		desc := "Alloc " + mp.Name
		rf, err := rp.Alloc()
		mf, cls := m.Alloc(mp)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		if cls == OK {
			if div := r.registerAlloc(c, desc, mf, rf); div != nil {
				return desc, div
			}
			return desc, r.checkSlot(c, desc, mf.Tag)
		}
		return desc, nil

	case OpAllocBatch:
		_, rp, mp := r.pathAt(c.A)
		k := 1 + int(c.B)%3
		desc := fmt.Sprintf("AllocBatch %s k=%d", mp.Name, k)
		out := make([]*core.Fbuf, k)
		n, err := rp.AllocBatch(out)
		mfs, cls := m.AllocBatch(mp, k)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		if n != len(mfs) {
			return desc, r.fail(c, desc, "filled count: model %d, implementation %d", len(mfs), n)
		}
		for i := 0; i < n; i++ {
			if div := r.registerAlloc(c, desc, mfs[i], out[i]); div != nil {
				return desc, div
			}
		}
		return desc, nil

	case OpTransfer:
		i := r.slotAt(c.A)
		if i < 0 {
			return "Transfer (no slots)", nil
		}
		from, fromID := r.holderDomAt(c.B, r.pairs[i].mf)
		to, toID := r.domAt(c.C)
		desc := fmt.Sprintf("Transfer s%d %s->%s", i, from.Name, to.Name)
		err := r.mgr.Transfer(r.pairs[i].rf, from, to)
		cls := m.Transfer(r.pairs[i].mf, fromID, toID)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, r.checkSlot(c, desc, i)

	case OpSecure:
		i := r.slotAt(c.A)
		if i < 0 {
			return "Secure (no slots)", nil
		}
		d, id := r.holderDomAt(c.B, r.pairs[i].mf)
		desc := fmt.Sprintf("Secure s%d by %s", i, d.Name)
		err := r.mgr.Secure(r.pairs[i].rf, d)
		cls := m.Secure(r.pairs[i].mf, id)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, r.checkSlot(c, desc, i)

	case OpWrite:
		i := r.slotAt(c.A)
		if i < 0 {
			return "Write (no slots)", nil
		}
		mf, rf := r.pairs[i].mf, r.pairs[i].rf
		// Torn fbufs are skipped (their VA may alias a reused chunk);
		// non-live writes are skipped so fbsan's free-list canaries see
		// only protocol-legal stores.
		if mf.Torn || mf.State != StLive {
			return fmt.Sprintf("Write s%d (skip: not live)", i), nil
		}
		d, id := r.domAt(c.B)
		off, n := span(mf.Pages, c.C, c.D)
		desc := fmt.Sprintf("Write s%d by %s off=%d", i, d.Name, off)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(int(c.D) + j*3 + 1)
		}
		err := rf.Write(d, off, data)
		cls := m.Write(mf, id, off, data)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, r.checkSlot(c, desc, i)

	case OpRead:
		i := r.slotAt(c.A)
		if i < 0 {
			return "Read (no slots)", nil
		}
		mf, rf := r.pairs[i].mf, r.pairs[i].rf
		if mf.Torn {
			return fmt.Sprintf("Read s%d (skip: torn)", i), nil
		}
		d, id := r.domAt(c.B)
		off, n := span(mf.Pages, c.C, c.D)
		desc := fmt.Sprintf("Read s%d by %s off=%d", i, d.Name, off)
		buf := make([]byte, n)
		err := rf.Read(d, off, buf)
		want, cls := m.Read(mf, id, off, n)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		// Contents are only compared while the fbuf is live or draining:
		// free-listed pages legitimately hold fbsan canaries.
		if cls == OK && mf.State != StFree {
			for j := range buf {
				if buf[j] != want[j] {
					return desc, r.fail(c, desc, "content at off %d: model %#x, implementation %#x", off+j, want[j], buf[j])
				}
			}
		}
		return desc, nil

	case OpFree:
		i := r.slotAt(c.A)
		if i < 0 {
			return "Free (no slots)", nil
		}
		d, id := r.holderDomAt(c.B, r.pairs[i].mf)
		desc := fmt.Sprintf("Free s%d by %s", i, d.Name)
		err := r.mgr.Free(r.pairs[i].rf, d)
		cls := m.Free(r.pairs[i].mf, id)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, r.checkSlot(c, desc, i)

	case OpFreeBatch:
		if len(r.pairs) == 0 {
			return "FreeBatch (no slots)", nil
		}
		first := r.slotAt(c.A)
		d, id := r.holderDomAt(c.B, r.pairs[first].mf)
		k := 1 + int(c.C)%3
		var rfs []*core.Fbuf
		var mfs []*MFbuf
		var idx []string
		for j := 0; j < k; j++ {
			i := (first + j) % len(r.pairs)
			rfs = append(rfs, r.pairs[i].rf)
			mfs = append(mfs, r.pairs[i].mf)
			idx = append(idx, fmt.Sprintf("s%d", i))
		}
		desc := fmt.Sprintf("FreeBatch [%s] by %s", strings.Join(idx, " "), d.Name)
		err := r.mgr.FreeBatch(rfs, d)
		cls := m.FreeBatch(mfs, id)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, nil

	case OpDupRef:
		i := r.slotAt(c.A)
		if i < 0 {
			return "DupRef (no slots)", nil
		}
		d, id := r.holderDomAt(c.B, r.pairs[i].mf)
		desc := fmt.Sprintf("DupRef s%d by %s", i, d.Name)
		err := r.mgr.DupRef(r.pairs[i].rf, d)
		cls := m.DupRef(r.pairs[i].mf, id)
		if got := Classify(err); got != cls {
			return desc, r.fail(c, desc, "error class: model %v, implementation %v (%v)", cls, got, err)
		}
		return desc, r.checkSlot(c, desc, i)

	case OpSetQuota:
		_, rp, mp := r.pathAt(c.A)
		q := quotaTable[int(c.B)%len(quotaTable)]
		desc := fmt.Sprintf("SetQuota %s %d", mp.Name, q)
		rp.SetQuota(q)
		m.SetQuota(mp, q)
		return desc, nil

	case OpCrash:
		d, id := r.userDomAt(c.A)
		desc := "Crash " + d.Name
		if !m.Domains[id].Dead {
			r.reg.Terminate(d)
			m.Crash(id)
		}
		return desc, r.audit(c, desc) // termination touches everything

	case OpReclaim:
		max := reclaimTable[int(c.A)%len(reclaimTable)]
		desc := fmt.Sprintf("ReclaimIdle %d", max)
		got := r.mgr.ReclaimIdle(max)
		want := m.ReclaimIdle(max)
		if got != want {
			return desc, r.fail(c, desc, "frames reclaimed: model %d, implementation %d", want, got)
		}
		return desc, nil

	case OpDeliver:
		rep, repID := r.domAt(c.A)
		cal, calID := r.domAt(c.B)
		desc := fmt.Sprintf("DeliverNotices %s->%s", rep.Name, cal.Name)
		r.mgr.DeliverNotices(rep, cal)
		m.DeliverNotices(repID, calID)
		return desc, nil

	case OpRingSubmit:
		hol, holID := r.domAt(c.A)
		own, ownID := r.domAt(c.B)
		desc := fmt.Sprintf("RingSubmit %s->%s", hol.Name, own.Name)
		pr := r.ring(holID, ownID)
		full := pr.CompletionsFull()
		if want := m.RingFull(holID, ownID); full != want {
			return desc, r.fail(c, desc, "ring full: model %v, implementation %v", want, full)
		}
		if full {
			return desc + " (full)", nil
		}
		batch := r.mgr.CollectNotices(hol, own)
		if got, want := len(batch), m.RingSubmit(holID, ownID); got != want {
			return desc, r.fail(c, desc, "coalesced batch size: model %d, implementation %d", want, got)
		}
		if len(batch) > 0 {
			if err := pr.Complete(rings.Completion{Op: "notices", Notices: len(batch), Payload: batch}); err != nil {
				return desc, r.fail(c, desc, "completion post after full check: %v", err)
			}
		}
		return desc, nil

	case OpRingDrain:
		hol, holID := r.domAt(c.A)
		own, ownID := r.domAt(c.B)
		desc := fmt.Sprintf("RingDrain %s->%s", hol.Name, own.Name)
		gotEntries, gotNotices := 0, 0
		r.ring(holID, ownID).DrainCompletions(func(cm rings.Completion) {
			gotEntries++
			if fs, ok := cm.Payload.([]*core.Fbuf); ok {
				gotNotices += len(fs)
				r.mgr.RetireNotices(fs)
			}
		})
		wantEntries, wantNotices := 0, 0
		for {
			n := m.RingDrain(holID, ownID)
			if n == 0 {
				break
			}
			wantEntries++
			wantNotices += n
		}
		if gotEntries != wantEntries || gotNotices != wantNotices {
			return desc, r.fail(c, desc, "drained entries/notices: model %d/%d, implementation %d/%d",
				wantEntries, wantNotices, gotEntries, gotNotices)
		}
		// Retiring recycles whole batches — the free-list identity oracle
		// (registerAlloc) then proves no free was lost or duplicated.
		return desc, r.audit(c, desc)

	case OpDepotExchange:
		_, rp, mp := r.pathAt(c.A)
		if c.B%2 == 0 {
			n := 1 + int(c.C)%3
			desc := fmt.Sprintf("DepotCharge %s n=%d", mp.Name, n)
			got := rp.DepotCharge(n)
			want := m.DepotCharge(mp, n)
			if got != want {
				return desc, r.fail(c, desc, "fbufs charged: model %d, implementation %d", want, got)
			}
			return desc, nil
		}
		desc := "DepotDischarge " + mp.Name
		got := rp.DepotDischarge()
		want := m.DepotDischarge(mp)
		if got != want {
			return desc, r.fail(c, desc, "fbufs discharged: model %d, implementation %d", want, got)
		}
		return desc, nil

	case OpEpochAdvance:
		switch c.A % 4 {
		case 2:
			r.epoch.Enter()
			m.EpochEnter()
			return "EpochEnter", nil
		case 3:
			r.epoch.Exit()
			m.EpochExit()
			return "EpochExit", nil
		default:
			desc := "AdvanceEpoch"
			got := r.mgr.AdvanceEpoch()
			want := m.AdvanceEpoch()
			if got != want {
				return desc, r.fail(c, desc, "frames retired: model %d, implementation %d", want, got)
			}
			if got, want := r.mgr.EpochPending(), m.EpochPending(); got != want {
				return desc, r.fail(c, desc, "frames still parked: model %d, implementation %d", want, got)
			}
			return desc, nil
		}

	default: // OpEvict
		_, rp, mp := r.pathAt(c.A)
		desc := "EvictPath " + mp.Name
		got := r.mgr.EvictPath(rp)
		want := m.EvictPath(mp)
		if got != want {
			return desc, r.fail(c, desc, "fbufs torn down: model %d, implementation %d", want, got)
		}
		// Eviction must never revoke a live or draining fbuf — a full
		// audit catches any reference or state the teardown overreached.
		return desc, r.audit(c, desc)
	}
}

// RunTrace executes a command sequence, returning the first divergence
// (nil if conformant) and the decoded per-step descriptions.
func RunTrace(cmds []Cmd, cfg Config) (*Divergence, []string) {
	r, err := newRunner(cfg)
	if err != nil {
		return &Divergence{Detail: err.Error()}, nil
	}
	trace := make([]string, 0, len(cmds))
	for i, c := range cmds {
		r.step = i
		desc, div := r.exec(c)
		trace = append(trace, desc)
		if div != nil {
			return div, trace
		}
		if (i+1)%r.cfg.AuditEvery == 0 {
			if div := r.audit(c, desc+" [audit]"); div != nil {
				return div, trace
			}
		}
	}
	if div := r.audit(Cmd{}, "final audit"); div != nil {
		return div, trace
	}
	return nil, trace
}

// Run executes a command sequence and returns the first divergence.
func Run(cmds []Cmd, cfg Config) *Divergence {
	div, _ := RunTrace(cmds, cfg)
	return div
}

// Generate produces a seeded command sequence with an allocation-heavy op
// mix (the weights keep buffers circulating so transfers and frees land
// on live state often enough to matter).
func Generate(seed int64, n int) []Cmd {
	rnd := rand.New(rand.NewSource(seed))
	weights := []struct {
		op int
		w  int
	}{
		{OpAlloc, 18}, {OpAllocBatch, 7}, {OpTransfer, 18}, {OpSecure, 6},
		{OpWrite, 11}, {OpRead, 11}, {OpFree, 16}, {OpFreeBatch, 5},
		{OpDupRef, 4}, {OpSetQuota, 3}, {OpCrash, 1}, {OpReclaim, 3},
		{OpDeliver, 5}, {OpEvict, 2}, {OpRingSubmit, 3}, {OpRingDrain, 2},
		{OpDepotExchange, 3}, {OpEpochAdvance, 2},
	}
	total := 0
	for _, w := range weights {
		total += w.w
	}
	cmds := make([]Cmd, n)
	for i := range cmds {
		pick := rnd.Intn(total)
		op := OpAlloc
		for _, w := range weights {
			if pick < w.w {
				op = w.op
				break
			}
			pick -= w.w
		}
		cmds[i] = Cmd{
			Op: byte(op),
			A:  byte(rnd.Intn(256)),
			B:  byte(rnd.Intn(256)),
			C:  byte(rnd.Intn(256)),
			D:  byte(rnd.Intn(256)),
		}
	}
	return cmds
}

// Shrink delta-debugs a failing command sequence to a locally minimal one:
// it removes progressively smaller chunks, keeping any candidate that
// still diverges. Because the encoding is total, every subsequence is
// executable; the shrunk sequence may diverge differently than the
// original — any divergence is a bug.
func Shrink(cmds []Cmd, cfg Config) []Cmd {
	cur := append([]Cmd(nil), cmds...)
	div := Run(cur, cfg)
	if div == nil {
		return cur
	}
	if div.Step+1 < len(cur) {
		cur = cur[:div.Step+1]
	}
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(cur); {
			cand := make([]Cmd, 0, len(cur)-chunk)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+chunk:]...)
			if d := Run(cand, cfg); d != nil {
				cur = cand
				if d.Step+1 < len(cur) {
					cur = cur[:d.Step+1]
				}
			} else {
				i += chunk
			}
		}
	}
	return cur
}

// Counterexample packages a failing seed for replay and reporting.
type Counterexample struct {
	Seed     int64
	Cfg      Config
	Original []Cmd
	Shrunk   []Cmd
	Div      *Divergence
}

// String renders the replay recipe and the shrunk command list.
func (ce *Counterexample) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conformance divergence (seed %d, %d commands, shrunk to %d):\n",
		ce.Seed, len(ce.Original), len(ce.Shrunk))
	_, trace := RunTrace(ce.Shrunk, ce.Cfg)
	for i, c := range ce.Shrunk {
		desc := "?"
		if i < len(trace) {
			desc = trace[i]
		}
		fmt.Fprintf(&sb, "  %2d: {%d,%d,%d,%d,%d} %s\n", i, c.Op, c.A, c.B, c.C, c.D, desc)
	}
	if ce.Div != nil {
		fmt.Fprintf(&sb, "  => %s\n", ce.Div.Error())
	}
	fmt.Fprintf(&sb, "replay: fbufsim -conform -seed=%d\n", ce.Seed)
	return sb.String()
}

// RunSeed generates, runs, and (on failure) shrinks one seeded sequence.
// It returns nil when the implementation conforms.
func RunSeed(seed int64, n int, cfg Config) *Counterexample {
	cmds := Generate(seed, n)
	div := Run(cmds, cfg)
	if div == nil {
		return nil
	}
	shrunk := Shrink(cmds[:div.Step+1], cfg)
	return &Counterexample{
		Seed:     seed,
		Cfg:      cfg,
		Original: cmds,
		Shrunk:   shrunk,
		Div:      Run(shrunk, cfg),
	}
}
