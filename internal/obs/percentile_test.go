package obs

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
	var hn *Histogram
	if got := hn.Percentile(99); got != 0 {
		t.Fatalf("nil p99 = %d, want 0", got)
	}
	var hs HistogramSnapshot
	if got := hs.Quantile(0.9); got != 0 {
		t.Fatalf("empty snapshot p90 = %d, want 0", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("q=%v = %d, want 42 (clamped to min==max)", q, got)
		}
	}
}

// Samples confined to one bucket: every quantile must stay inside the
// observed [min, max], not just the bucket's theoretical bounds.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	// Bucket [64, 127]; observed range [100, 110].
	for v := int64(100); v <= 110; v++ {
		h.Observe(v)
	}
	p50 := h.Percentile(50)
	if p50 < 100 || p50 > 110 {
		t.Fatalf("p50 = %d, want within observed [100, 110]", p50)
	}
	if got := h.Percentile(0); got != 100 {
		t.Fatalf("p0 = %d, want clamp to min 100", got)
	}
	if got := h.Percentile(100); got != 110 {
		t.Fatalf("p100 = %d, want clamp to max 110", got)
	}
}

func TestQuantileInterpolatesAcrossBuckets(t *testing.T) {
	var h Histogram
	// 90 samples in bucket [1,1], 10 in bucket [1024, 2047].
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	if got := h.Percentile(50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	p99 := h.Percentile(99)
	if p99 < 1024 || p99 > 1500 {
		t.Fatalf("p99 = %d, want in [1024, 1500] (tail bucket, max-clamped)", p99)
	}
	if got := h.Percentile(90); got > 1500 && got >= 1 {
		t.Fatalf("p90 = %d out of range", got)
	}
}

// Saturated histogram: samples at the top of the int64 range must not
// overflow the interpolation arithmetic.
func TestQuantileSaturated(t *testing.T) {
	var h Histogram
	top := int64(math.MaxInt64)
	for i := 0; i < 100; i++ {
		h.Observe(top)
	}
	for _, p := range []float64{50, 90, 99} {
		if got := h.Percentile(p); got != top {
			t.Fatalf("p%v = %d, want MaxInt64", p, got)
		}
	}
	// Mixed with a low sample the high quantiles stay in the top bucket.
	h.Observe(1)
	if got := h.Percentile(99); got <= 0 || got > top {
		t.Fatalf("p99 = %d, want positive and <= MaxInt64", got)
	}
}

func TestQuantileUniformSpread(t *testing.T) {
	var h Histogram
	// 1..1000 uniformly: p50 should land near 500 (log2 buckets make this
	// approximate — accept the owning bucket's range).
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	p50 := h.Percentile(50)
	if p50 < 256 || p50 > 750 {
		t.Fatalf("p50 = %d, want roughly 500 (bucket-resolution)", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("p99 = %d, want near 990", p99)
	}
	if h.Quantile(-1) != 1 || h.Quantile(2) != 1000 {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestQuantileNegativeSamples(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(-5)
	h.Observe(7)
	// Bucket 0 holds v <= 0; the estimator interpolates between the
	// observed min and the bucket's upper edge.
	if got := h.Percentile(25); got < -5 || got > 0 {
		t.Fatalf("p25 = %d, want within [-5, 0]", got)
	}
	if got := h.Percentile(100); got != 7 {
		t.Fatalf("p100 = %d, want 7", got)
	}
}
