package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named count. All methods are safe on nil and
// safe for concurrent use (atomic); in the default single-threaded mode the
// atomics are uncontended.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set overwrites the value — used when publishing an authoritative counter
// (e.g. a core.Stats field) into the registry, so the struct field stays
// the single source of truth and no duplicate live count drifts.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named instantaneous value. Safe for concurrent use (atomic).
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count: bucket 0 holds v <= 0, bucket i >= 1
// holds v in [2^(i-1), 2^i - 1]. 64 value buckets cover all of int64.
const histBuckets = 65

// Histogram is a log2-scale histogram of int64 samples (latencies in
// simulated nanoseconds, batch sizes, depths). Observe and the read
// accessors are guarded by a mutex so concurrent workers can share one
// histogram; single-threaded runs pay only an uncontended lock.
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
// Bucket 0 is (-inf, 0], reported as [0, 0].
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot copies out the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		hs.Buckets = append(hs.Buckets, BucketCount{Lo: lo, Hi: hi, N: n})
	}
	return hs
}

// Registry holds named metrics. Accessors create on first use, so
// instrumentation sites never need registration boilerplate. Lookup and
// creation are guarded by a mutex; hot paths should cache the returned
// metric pointer rather than re-resolving the name per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil
// (whose methods are no-ops) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BucketCount is one populated histogram bucket in a snapshot.
type BucketCount struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the exported view of a histogram: summary statistics
// plus the populated buckets only.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, JSON-exportable.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies out every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Go sorts map keys when
// marshaling, so the output is deterministic for identical metric states.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names returns the sorted names of all metrics (tests, listings).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
