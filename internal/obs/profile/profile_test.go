package profile

import (
	"bytes"
	"strings"
	"testing"

	"fbufs/internal/obs/span"
)

// mktrace assembles a trace through a real recorder so the span structure
// (IDs, parenting, root synthesis) matches production.
func mktrace(build func(r *span.Recorder, id uint64)) span.Trace {
	r := span.NewRecorder(4)
	id := r.BeginTrace(0, "data", 1024)
	build(r, id)
	done := r.Completed()
	if len(done) == 0 {
		panic("trace did not complete")
	}
	return done[len(done)-1]
}

func attributed(tr span.Trace) (map[Key]int64, int64) {
	acc := foldTrace(tr)
	var sum int64
	for _, ns := range acc {
		sum += ns
	}
	return acc, sum
}

// The fold is a partition: attributed stage time must sum to the trace's
// end-to-end duration exactly, whatever the span structure.
func TestFoldPartitionsExactly(t *testing.T) {
	tr := mktrace(func(r *span.Recorder, id uint64) {
		r.Begin(span.StageIPC, "ipc", 0, 100, 0)
		r.Begin(span.StageAlloc, "core", 0, 120, 0)
		r.End(150)
		r.End(200)
		// Pipelined link spans overlapping each other and the gap.
		r.Record(id, span.StageLink, "net", span.NoActor, 180, 400, 0)
		r.Record(id, span.StageLink, "net", span.NoActor, 250, 500, 0)
		r.EndTrace(id, 600)
	})
	acc, sum := attributed(tr)
	if e2e := int64(tr.Dur()); sum != e2e {
		t.Fatalf("attributed %d != e2e %d (acc=%v)", sum, e2e, acc)
	}
	if acc[Key{"sched", span.StageWait}] != 200 {
		t.Fatalf("wait = %d, want 200 (gaps 0..100 and 500..600); acc=%v",
			acc[Key{"sched", span.StageWait}], acc)
	}
}

// Nested span time is charged to the deepest (innermost) span.
func TestFoldDeepestWins(t *testing.T) {
	tr := mktrace(func(r *span.Recorder, id uint64) {
		r.Begin(span.StageIPC, "ipc", 0, 0, 0)
		r.Begin(span.StageAlloc, "core", 0, 10, 0)
		r.End(40)
		r.End(100)
		r.EndTrace(id, 100)
	})
	acc, sum := attributed(tr)
	if sum != 100 {
		t.Fatalf("attributed %d != 100", sum)
	}
	if acc[Key{"core", span.StageAlloc}] != 30 {
		t.Fatalf("alloc = %d, want 30", acc[Key{"core", span.StageAlloc}])
	}
	if acc[Key{"ipc", span.StageIPC}] != 70 {
		t.Fatalf("ipc = %d, want 70 (100 - nested 30)", acc[Key{"ipc", span.StageIPC}])
	}
}

// Overlapping same-depth spans must not double-count: each elementary
// interval goes to exactly one of them (the later-started).
func TestFoldOverlapNoDoubleCount(t *testing.T) {
	tr := mktrace(func(r *span.Recorder, id uint64) {
		r.Record(id, span.StageLink, "net", span.NoActor, 0, 100, 0)
		r.Record(id, span.StageDMA, "driver", 5, 50, 150, 0)
		r.EndTrace(id, 150)
	})
	acc, sum := attributed(tr)
	if sum != 150 {
		t.Fatalf("attributed %d != e2e 150 (double count?) acc=%v", sum, acc)
	}
	if acc[Key{"net", span.StageLink}] != 50 {
		t.Fatalf("link = %d, want 50 (0..50)", acc[Key{"net", span.StageLink}])
	}
	if acc[Key{"driver", span.StageDMA}] != 100 {
		t.Fatalf("dma = %d, want 100 (50..150, later start wins)", acc[Key{"driver", span.StageDMA}])
	}
}

// Spans extending past the trace end (deferred finalization) are clamped.
func TestFoldClampsOverhang(t *testing.T) {
	tr := mktrace(func(r *span.Recorder, id uint64) {
		r.Begin(span.StageProto, "udp", 0, 10, 0)
		r.EndTrace(id, 50) // sink ends the trace mid-delivery
		r.End(80)          // udp unwinds later
	})
	acc, sum := attributed(tr)
	if sum != 50 {
		t.Fatalf("attributed %d != e2e 50", sum)
	}
	if acc[Key{"udp", span.StageProto}] != 40 {
		t.Fatalf("proto = %d, want clamped 40 (10..50)", acc[Key{"udp", span.StageProto}])
	}
}

func TestProfilerReport(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 10; i++ {
		p.Add(mktrace(func(r *span.Recorder, id uint64) {
			r.Begin(span.StageIPC, "ipc", 0, 0, 0)
			r.End(110)
			r.Begin(span.StageAlloc, "core", 0, 110, 0)
			r.End(140)
			r.EndTrace(id, 200)
		}))
	}
	rep := p.Report()
	pr := rep.Path("data")
	if pr == nil || pr.Traces != 10 {
		t.Fatalf("path data = %+v", pr)
	}
	if pr.AttributedNs != pr.E2ETotalNs {
		t.Fatalf("attributed %d != e2e %d", pr.AttributedNs, pr.E2ETotalNs)
	}
	if pr.E2E.P50Ns != 200 || pr.E2E.P99Ns != 200 {
		t.Fatalf("e2e dist = %+v", pr.E2E)
	}
	// Stages sorted by total descending: ipc (1100) > wait (600) > alloc (300).
	if len(pr.Stages) != 3 || pr.Stages[0].Layer != "ipc" {
		t.Fatalf("stages = %+v", pr.Stages)
	}
	if got := pr.Stages[0].Pct; got < 54 || got > 56 {
		t.Fatalf("ipc pct = %v, want ~55", got)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"path data", "ipc", "wait", "alloc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestProfilerNilAndEmpty(t *testing.T) {
	var p *Profiler
	p.Add(span.Trace{})
	if rep := p.Report(); len(rep.Paths) != 0 {
		t.Fatal("nil profiler produced paths")
	}
	var buf bytes.Buffer
	if err := (&Report{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no completed traces") {
		t.Fatalf("empty report text = %q", buf.String())
	}
}

func TestContentionTable(t *testing.T) {
	var buf bytes.Buffer
	cells := []ContentionCell{
		{Name: "path0", Acquires: 100, Contended: 50, WaitNs: 12345},
		{Name: "path1", Acquires: 1000, Contended: 1},
		{Name: "idle", Acquires: 0},
	}
	if err := WriteContentionTable(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "idle") {
		t.Fatal("zero-acquire cell rendered")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "path0") || !strings.Contains(lines[1], "##########") {
		t.Fatalf("hottest row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#") {
		t.Fatalf("contended-at-all row must be visibly warm: %q", lines[2])
	}

	buf.Reset()
	if err := WriteContentionTable(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no lock acquires") {
		t.Fatalf("empty table = %q", buf.String())
	}
}
