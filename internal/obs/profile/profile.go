// Package profile folds completed transfer traces (internal/obs/span) into
// latency attribution: for every transfer path (trace label) it answers
// "where did this transfer's time go", per layer and per stage, with log2
// percentiles across transfers — the critical-path view behind the paper's
// Figure 5 argument that control transfer dominates the cached path.
//
// The fold is a timeline sweep, not a parent-minus-children subtraction:
// every elementary interval between span boundaries (clamped to the trace's
// [start, end]) is attributed to the *deepest* span covering it, and time
// covered by no child span at all becomes synthetic StageWait ("sched")
// time. Because the sweep partitions the end-to-end interval exactly, the
// per-stage totals always sum to the end-to-end time — even when pipelined
// spans overlap (a PDU on the link while the CPU builds the next one),
// which a naive per-span sum would double-count.
//
// The package also hosts the flight recorder (flightrec.go) and the lock
// contention heatmap renderer (contention.go).
package profile

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
)

// Key identifies one attribution bucket: the emitting layer plus the stage.
type Key struct {
	Layer string
	Stage span.Stage
}

// stageAgg accumulates one (layer, stage) bucket within a path.
type stageAgg struct {
	traces int64 // transfers in which the stage appeared
	total  int64 // summed attributed ns across transfers
	hist   obs.Histogram
}

// pathAgg accumulates one transfer path (trace label).
type pathAgg struct {
	traces   int64
	e2eTotal int64
	e2e      obs.Histogram
	stages   map[Key]*stageAgg
}

// Profiler folds completed traces into per-path, per-stage attribution.
// A nil *Profiler ignores every call.
type Profiler struct {
	mu    sync.Mutex
	paths map[string]*pathAgg
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{paths: make(map[string]*pathAgg)}
}

// Add folds one completed trace. Safe on nil; safe for concurrent use.
func (p *Profiler) Add(tr span.Trace) {
	if p == nil || len(tr.Spans) == 0 {
		return
	}
	attr := foldTrace(tr)
	label := tr.Label
	if label == "" {
		label = "unlabeled"
	}
	e2e := int64(tr.Dur())
	p.mu.Lock()
	pa := p.paths[label]
	if pa == nil {
		pa = &pathAgg{stages: make(map[Key]*stageAgg)}
		p.paths[label] = pa
	}
	pa.traces++
	pa.e2eTotal += e2e
	pa.e2e.Observe(e2e)
	for k, ns := range attr {
		sa := pa.stages[k]
		if sa == nil {
			sa = &stageAgg{}
			pa.stages[k] = sa
		}
		sa.traces++
		sa.total += ns
		sa.hist.Observe(ns)
	}
	p.mu.Unlock()
}

// foldTrace partitions one trace's [Start, End] interval across its spans:
// each elementary interval goes to the deepest covering span (ties: later
// start, then higher ID — the most recently opened wins), and uncovered
// time becomes StageWait. The returned totals sum to the trace duration.
func foldTrace(tr span.Trace) map[Key]int64 {
	acc := make(map[Key]int64)
	start, end := tr.Start, tr.End
	if end <= start {
		return acc
	}

	// Depth via the parent chain; parents may appear after children in the
	// slice (completion order), so resolve through an ID index with memoing.
	byID := make(map[uint32]int, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].ID] = i
	}
	depth := make(map[uint32]int, len(tr.Spans))
	depth[span.RootID] = 0
	var depthOf func(id uint32, hops int) int
	depthOf = func(id uint32, hops int) int {
		if d, ok := depth[id]; ok {
			return d
		}
		if hops > len(tr.Spans) { // cycle guard: malformed parent chain
			return 1
		}
		i, ok := byID[id]
		if !ok {
			return 1
		}
		d := depthOf(tr.Spans[i].Parent, hops+1) + 1
		depth[id] = d
		return d
	}

	// Child spans, clamped to the trace interval. Spans may end after the
	// trace does (the sink ends the trace before the delivery chain
	// unwinds); the overhang is not transfer latency and is cut off.
	type cspan struct {
		lo, hi simtime.Time
		d      int
		start  simtime.Time
		id     uint32
		key    Key
	}
	spans := make([]cspan, 0, len(tr.Spans))
	bounds := make([]simtime.Time, 0, 2*len(tr.Spans))
	bounds = append(bounds, start, end)
	for _, s := range tr.Spans {
		if s.ID == span.RootID {
			continue
		}
		lo, hi := s.Start, s.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		spans = append(spans, cspan{
			lo: lo, hi: hi, d: depthOf(s.ID, 0), start: s.Start, id: s.ID,
			key: Key{Layer: s.Layer, Stage: s.Stage},
		})
		bounds = append(bounds, lo, hi)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	waitKey := Key{Layer: "sched", Stage: span.StageWait}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		best := -1
		for j := range spans {
			s := &spans[j]
			if s.lo > lo || s.hi < hi {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			b := &spans[best]
			if s.d > b.d ||
				(s.d == b.d && (s.start > b.start ||
					(s.start == b.start && s.id > b.id))) {
				best = j
			}
		}
		dur := int64(hi - lo)
		if best < 0 {
			acc[waitKey] += dur
		} else {
			acc[spans[best].key] += dur
		}
	}
	return acc
}

// Dist summarizes a latency distribution in nanoseconds.
type Dist struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

func distOf(count int64, h *obs.Histogram) Dist {
	return Dist{
		Count: count,
		P50Ns: h.Percentile(50),
		P90Ns: h.Percentile(90),
		P99Ns: h.Percentile(99),
		MaxNs: h.Percentile(100),
	}
}

// StageRow is one attribution bucket of a path: how much of the path's time
// one (layer, stage) pair consumed, and its per-transfer distribution.
type StageRow struct {
	Layer   string  `json:"layer"`
	Stage   string  `json:"stage"`
	TotalNs int64   `json:"total_ns"`
	Pct     float64 `json:"pct"` // share of the path's end-to-end time
	Dist    Dist    `json:"dist"`
}

// PathReport is the attribution for one transfer path (trace label).
type PathReport struct {
	Label        string     `json:"label"`
	Traces       int64      `json:"traces"`
	E2ETotalNs   int64      `json:"e2e_total_ns"`
	AttributedNs int64      `json:"attributed_ns"` // == E2ETotalNs by construction
	E2E          Dist       `json:"e2e"`
	Stages       []StageRow `json:"stages"` // sorted by TotalNs descending
}

// Report is the profiler's full output, one entry per path, sorted by label.
type Report struct {
	Paths []PathReport `json:"paths"`
}

// Path returns the report for one label, or nil.
func (r *Report) Path(label string) *PathReport {
	if r == nil {
		return nil
	}
	for i := range r.Paths {
		if r.Paths[i].Label == label {
			return &r.Paths[i]
		}
	}
	return nil
}

// Report snapshots the profiler into a Report. Safe on nil.
func (p *Profiler) Report() *Report {
	rep := &Report{}
	if p == nil {
		return rep
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	labels := make([]string, 0, len(p.paths))
	for l := range p.paths {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		pa := p.paths[l]
		pr := PathReport{
			Label:      l,
			Traces:     pa.traces,
			E2ETotalNs: pa.e2eTotal,
			E2E:        distOf(pa.traces, &pa.e2e),
		}
		for k, sa := range pa.stages {
			row := StageRow{
				Layer:   k.Layer,
				Stage:   k.Stage.String(),
				TotalNs: sa.total,
				Dist:    distOf(sa.traces, &sa.hist),
			}
			if pa.e2eTotal > 0 {
				row.Pct = 100 * float64(sa.total) / float64(pa.e2eTotal)
			}
			pr.AttributedNs += sa.total
			pr.Stages = append(pr.Stages, row)
		}
		sort.Slice(pr.Stages, func(i, j int) bool {
			a, b := pr.Stages[i], pr.Stages[j]
			if a.TotalNs != b.TotalNs {
				return a.TotalNs > b.TotalNs
			}
			if a.Layer != b.Layer {
				return a.Layer < b.Layer
			}
			return a.Stage < b.Stage
		})
		rep.Paths = append(rep.Paths, pr)
	}
	return rep
}

// WriteText renders the report as an aligned attribution table.
func (r *Report) WriteText(w io.Writer) error {
	if r == nil || len(r.Paths) == 0 {
		_, err := fmt.Fprintln(w, "profile: no completed traces")
		return err
	}
	for _, pr := range r.Paths {
		_, err := fmt.Fprintf(w, "path %-10s  traces %-6d e2e p50 %s  p99 %s  max %s\n",
			pr.Label, pr.Traces,
			simtime.Time(pr.E2E.P50Ns), simtime.Time(pr.E2E.P99Ns), simtime.Time(pr.E2E.MaxNs))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %-8s %8s %7s %12s %12s %12s\n",
			"layer", "stage", "pct", "traces", "p50", "p99", "max")
		for _, row := range pr.Stages {
			_, err := fmt.Fprintf(w, "  %-12s %-8s %7.2f%% %7d %12s %12s %12s\n",
				row.Layer, row.Stage, row.Pct, row.Dist.Count,
				simtime.Time(row.Dist.P50Ns), simtime.Time(row.Dist.P99Ns),
				simtime.Time(row.Dist.MaxNs))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Attach wires a profiler and an optional flight recorder to an observer's
// span recorder: every completed trace feeds both. Safe when any argument
// is nil (missing pieces are skipped).
func Attach(o *obs.Observer, p *Profiler, fr *FlightRecorder) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.OnComplete(func(tr span.Trace) {
		p.Add(tr)
		fr.OnTrace(tr)
	})
}
