package profile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
)

// Anomaly is one trigger recorded by the flight recorder.
type Anomaly struct {
	At     simtime.Time `json:"at_ns"`
	Kind   string       `json:"kind"`
	Detail string       `json:"detail"`
}

// FlightRecorder is the always-on bounded crash-dump facility: it keeps the
// last N completed traces and, when an anomaly trips (end-to-end latency
// over threshold, allocation failure, copy-path fallback, a fault-plane
// verdict), renders them plus the current metrics snapshot as a Perfetto
// (Chrome trace-event) file.
//
// A nil *FlightRecorder ignores every call, matching the obs discipline.
type FlightRecorder struct {
	mu      sync.Mutex
	obs     *obs.Observer
	ring    []span.Trace
	next, n int

	threshNs    int64  // 0: latency trigger disabled
	threshLabel string // label the latency trigger applies to; "": any

	cursor    uint64 // Tracer.Since cursor for ScanEvents
	anomalies []Anomaly
}

// maxAnomalies bounds the recorded trigger list; later trips keep the
// tripped state but stop accumulating detail.
const maxAnomalies = 64

// anomalousEvents maps tracer event kinds to flight-recorder triggers:
// quota/pool exhaustion, the copy-path fallback engaging, and fault-plane
// verdicts. (EvCopyRecover and EvCRCDrop are expected behavior on a
// configured lossy link and do not trip.)
var anomalousEvents = map[obs.EventKind]string{
	obs.EvAllocFailed:  "alloc-failed",
	obs.EvCopyFallback: "copy-fallback",
	obs.EvLinkFault:    "link-fault",
	obs.EvDomainCrash:  "domain-crash",
}

// NewFlightRecorder creates a recorder retaining the last capacity traces,
// pulling events and metrics from o at scan and dump time.
func NewFlightRecorder(o *obs.Observer, capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{obs: o, ring: make([]span.Trace, capacity)}
}

// SetLatencyThreshold arms the latency trigger: a completed trace with the
// given label (or any label when label is "") whose end-to-end duration
// exceeds ns trips the recorder. ns <= 0 disarms. Safe on nil.
func (fr *FlightRecorder) SetLatencyThreshold(label string, ns int64) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.threshLabel, fr.threshNs = label, ns
	fr.mu.Unlock()
}

// OnTrace records a completed trace into the ring and checks the latency
// trigger. Safe on nil; wired via profile.Attach.
func (fr *FlightRecorder) OnTrace(tr span.Trace) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.ring[fr.next] = tr
	fr.next++
	if fr.next == len(fr.ring) {
		fr.next = 0
	}
	if fr.n < len(fr.ring) {
		fr.n++
	}
	if fr.threshNs > 0 && int64(tr.Dur()) > fr.threshNs &&
		(fr.threshLabel == "" || fr.threshLabel == tr.Label) {
		fr.tripLocked(tr.End, "latency",
			fmt.Sprintf("%s trace %d: %s > %s threshold",
				tr.Label, tr.ID, tr.Dur(), simtime.Time(fr.threshNs)))
	}
	fr.mu.Unlock()
}

// Trip records an anomaly directly — for triggers outside the recorder's
// own detectors (a bench harness assertion, a conformance divergence).
// Safe on nil.
func (fr *FlightRecorder) Trip(at simtime.Time, kind, detail string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.tripLocked(at, kind, detail)
	fr.mu.Unlock()
}

func (fr *FlightRecorder) tripLocked(at simtime.Time, kind, detail string) {
	if len(fr.anomalies) < maxAnomalies {
		fr.anomalies = append(fr.anomalies, Anomaly{At: at, Kind: kind, Detail: detail})
	}
}

// ScanEvents drains tracer events emitted since the previous scan and trips
// on the anomalous kinds (allocation failure, copy fallback, link fault,
// domain crash). Call it periodically or once at the end of a run. Safe on
// nil.
func (fr *FlightRecorder) ScanEvents() {
	if fr == nil || fr.obs == nil || fr.obs.Tracer == nil {
		return
	}
	fr.mu.Lock()
	evs := fr.obs.Tracer.Since(fr.cursor)
	fr.cursor = fr.obs.Tracer.Total()
	for _, e := range evs {
		if kind, ok := anomalousEvents[e.Kind]; ok {
			fr.tripLocked(e.At, kind,
				fmt.Sprintf("%s domain=%d path=%d arg=%d", e.Kind, e.Domain, e.Path, e.Arg))
		}
	}
	fr.mu.Unlock()
}

// Tripped reports whether any anomaly has fired, and the first one.
// Safe on nil.
func (fr *FlightRecorder) Tripped() (bool, Anomaly) {
	if fr == nil {
		return false, Anomaly{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.anomalies) == 0 {
		return false, Anomaly{}
	}
	return true, fr.anomalies[0]
}

// Anomalies returns a copy of the recorded triggers. Safe on nil.
func (fr *FlightRecorder) Anomalies() []Anomaly {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Anomaly, len(fr.anomalies))
	copy(out, fr.anomalies)
	return out
}

// Traces returns the retained traces, oldest first. Safe on nil.
func (fr *FlightRecorder) Traces() []span.Trace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.tracesLocked()
}

func (fr *FlightRecorder) tracesLocked() []span.Trace {
	if fr.n == 0 {
		return nil
	}
	out := make([]span.Trace, 0, fr.n)
	start := fr.next - fr.n
	if start < 0 {
		start += len(fr.ring)
	}
	for i := 0; i < fr.n; i++ {
		out = append(out, fr.ring[(start+i)%len(fr.ring)])
	}
	return out
}

// WriteDump renders the retained traces, anomalies, and a metrics snapshot
// as Chrome trace-event JSON loadable in Perfetto. Spans are "X" (complete)
// events — pid is the span's actor mapped as in the event exporter (actor
// -1 becomes the reserved "host" pid 0), tid is the owning trace ID —
// anomalies are instant events on the host track, and the metrics snapshot
// rides in a final metadata event's args. Output is deterministic: traces
// oldest first, spans in recorded order, no map iteration. Safe on nil.
func (fr *FlightRecorder) WriteDump(w io.Writer) error {
	if fr == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n")
		return err
	}
	fr.mu.Lock()
	traces := fr.tracesLocked()
	anomalies := make([]Anomaly, len(fr.anomalies))
	copy(anomalies, fr.anomalies)
	o := fr.obs
	fr.mu.Unlock()

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			b.WriteString(",\n")
		}
		first = false
	}
	// Process metadata for every pid referenced, sorted; pid 0 is reserved
	// for host-level (actor-less) spans and the anomaly track.
	pids := map[int]bool{0: true}
	for _, tr := range traces {
		for _, s := range tr.Spans {
			pids[s.Actor+1] = true
		}
	}
	sorted := make([]int, 0, len(pids))
	for pid := range pids {
		sorted = append(sorted, pid)
	}
	sortInts(sorted)
	var tracer *obs.Tracer
	if o != nil {
		tracer = o.Tracer
	}
	for _, pid := range sorted {
		sep()
		fmt.Fprintf(&b, `{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jstr(tracer.ActorName(pid-1)))
	}
	for _, tr := range traces {
		for _, s := range tr.Spans {
			sep()
			ns, dur := int64(s.Start), int64(s.Dur())
			if dur < 0 {
				dur = 0
			}
			fmt.Fprintf(&b, `{"ph":"X","name":%s,"cat":"span","pid":%d,"tid":%d,"ts":%d.%03d,"dur":%d.%03d,"args":{"trace":%d,"label":%s,"arg":%d}}`,
				jstr(s.Stage.String()+" "+s.Layer), s.Actor+1, tr.ID,
				ns/1000, ns%1000, dur/1000, dur%1000, tr.ID, jstr(tr.Label), s.Arg)
		}
	}
	for _, a := range anomalies {
		sep()
		ns := int64(a.At)
		fmt.Fprintf(&b, `{"ph":"i","name":%s,"cat":"anomaly","pid":0,"tid":0,"ts":%d.%03d,"s":"g","args":{"detail":%s}}`,
			jstr("anomaly:"+a.Kind), ns/1000, ns%1000, jstr(a.Detail))
	}
	if o != nil && o.Metrics != nil {
		o.PublishSelfMetrics()
		var mb bytes.Buffer
		if err := o.Metrics.Snapshot().WriteJSON(&mb); err == nil {
			sep()
			fmt.Fprintf(&b, `{"ph":"M","name":"fbufs_metrics","pid":0,"tid":0,"args":{"snapshot":%s}}`,
				mb.String())
		}
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// DumpIfTripped writes the dump to path when an anomaly has fired and
// reports whether it did. Safe on nil.
func (fr *FlightRecorder) DumpIfTripped(path string) (bool, error) {
	tripped, _ := fr.Tripped()
	if !tripped {
		return false, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return true, err
	}
	if err := fr.WriteDump(f); err != nil {
		f.Close()
		return true, err
	}
	return true, f.Close()
}

// jstr renders s as a JSON string literal (mirrors the obs exporter).
func jstr(s string) string {
	data, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(data)
}

// sortInts is sort.Ints without pulling extra weight into the hot file.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
