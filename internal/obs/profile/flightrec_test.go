package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fbufs/internal/obs"
	"fbufs/internal/obs/span"
)

func newObsWithSpans() *obs.Observer {
	o := obs.New(64)
	o.Spans = span.NewRecorder(16)
	return o
}

func runTrace(o *obs.Observer, dur int64) {
	id := o.BeginTrace("data", 4096)
	o.SpanBegin(span.StageIPC, "ipc", 2, 0)
	o.SpanEnd()
	o.Spans.Record(id, span.StageLink, "net", span.NoActor, 0, 10, 0)
	o.Spans.EndTrace(id, 0)
	_ = dur
}

func TestFlightRecorderRingBound(t *testing.T) {
	fr := NewFlightRecorder(nil, 2)
	for i := 0; i < 5; i++ {
		fr.OnTrace(span.Trace{ID: uint64(i + 1)})
	}
	got := fr.Traces()
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("retained = %+v, want traces 4, 5", got)
	}
}

func TestLatencyTrigger(t *testing.T) {
	fr := NewFlightRecorder(nil, 4)
	fr.SetLatencyThreshold("data", 100)
	fr.OnTrace(span.Trace{ID: 1, Label: "data", Start: 0, End: 90})
	if tripped, _ := fr.Tripped(); tripped {
		t.Fatal("tripped below threshold")
	}
	fr.OnTrace(span.Trace{ID: 2, Label: "ack", Start: 0, End: 500})
	if tripped, _ := fr.Tripped(); tripped {
		t.Fatal("tripped on non-matching label")
	}
	fr.OnTrace(span.Trace{ID: 3, Label: "data", Start: 0, End: 500})
	tripped, a := fr.Tripped()
	if !tripped || a.Kind != "latency" {
		t.Fatalf("tripped=%v anomaly=%+v", tripped, a)
	}
}

func TestScanEventsTrips(t *testing.T) {
	o := obs.New(64)
	fr := NewFlightRecorder(o, 4)
	o.Emit(obs.EvAlloc, 1, 0, 0, 4) // benign
	fr.ScanEvents()
	if tripped, _ := fr.Tripped(); tripped {
		t.Fatal("tripped on benign event")
	}
	o.Emit(obs.EvAllocFailed, 1, 0, 0, 4)
	o.Emit(obs.EvCopyFallback, 2, 1, 0, 0)
	fr.ScanEvents()
	anoms := fr.Anomalies()
	if len(anoms) != 2 || anoms[0].Kind != "alloc-failed" || anoms[1].Kind != "copy-fallback" {
		t.Fatalf("anomalies = %+v", anoms)
	}
	// Cursor advanced: rescanning the same events must not re-trip.
	fr.ScanEvents()
	if len(fr.Anomalies()) != 2 {
		t.Fatal("rescan duplicated anomalies")
	}
}

// The dump must be valid Chrome trace-event JSON: loadable, with the
// reserved host pid 0, complete ("X") span events, and anomaly instants.
func TestDumpIsLoadablePerfetto(t *testing.T) {
	o := newObsWithSpans()
	p := NewProfiler()
	fr := NewFlightRecorder(o, 8)
	Attach(o, p, fr)
	runTrace(o, 10)
	fr.Trip(42, "test", "synthetic anomaly")

	var buf bytes.Buffer
	if err := fr.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Pid  int             `json:"pid"`
			Tid  uint64          `json:"tid"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", dump.DisplayTimeUnit)
	}
	var sawHostMeta, sawSpan, sawAnomaly, sawMetrics bool
	for _, e := range dump.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name" && e.Pid == 0:
			sawHostMeta = true
		case e.Ph == "X":
			sawSpan = true
			if e.Pid < 0 {
				t.Fatalf("span event with negative pid: %+v", e)
			}
		case e.Ph == "i" && strings.HasPrefix(e.Name, "anomaly:"):
			sawAnomaly = true
		case e.Ph == "M" && e.Name == "fbufs_metrics":
			sawMetrics = true
		}
	}
	if !sawHostMeta || !sawSpan || !sawAnomaly || !sawMetrics {
		t.Fatalf("dump missing sections: host=%v span=%v anomaly=%v metrics=%v",
			sawHostMeta, sawSpan, sawAnomaly, sawMetrics)
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := fr.WriteDump(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("dump not deterministic")
	}
}

func TestDumpIfTripped(t *testing.T) {
	fr := NewFlightRecorder(nil, 2)
	path := t.TempDir() + "/dump.json"
	if wrote, err := fr.DumpIfTripped(path); wrote || err != nil {
		t.Fatalf("untripped: wrote=%v err=%v", wrote, err)
	}
	fr.Trip(0, "test", "x")
	wrote, err := fr.DumpIfTripped(path)
	if !wrote || err != nil {
		t.Fatalf("tripped: wrote=%v err=%v", wrote, err)
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var fr *FlightRecorder
	fr.OnTrace(span.Trace{})
	fr.ScanEvents()
	fr.Trip(0, "x", "y")
	fr.SetLatencyThreshold("", 1)
	if tripped, _ := fr.Tripped(); tripped {
		t.Fatal("nil recorder tripped")
	}
	if fr.Traces() != nil || fr.Anomalies() != nil {
		t.Fatal("nil recorder returned data")
	}
	var buf bytes.Buffer
	if err := fr.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil dump not valid JSON")
	}
}
