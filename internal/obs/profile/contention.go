package profile

import (
	"fmt"
	"io"
	"sort"
)

// ContentionCell is one row of the lock contention heatmap: a named lock
// (a data path's sharded lock, a magazine depot) with its acquire count,
// how many acquires hit contention, and the wall-clock time spent waiting.
// WaitNs is measured in real time, not simulated time — contention only
// exists when the SMP bench harness runs real goroutines — and is zero in
// the deterministic single-threaded mode.
type ContentionCell struct {
	Name      string  `json:"name"`
	Acquires  uint64  `json:"acquires"`
	Contended uint64  `json:"contended"`
	WaitNs    int64   `json:"wait_ns"`
	Rate      float64 `json:"rate"` // Contended / Acquires
}

// FillRates computes each cell's contention rate in place.
func FillRates(cells []ContentionCell) {
	for i := range cells {
		if cells[i].Acquires > 0 {
			cells[i].Rate = float64(cells[i].Contended) / float64(cells[i].Acquires)
		}
	}
}

// WriteContentionTable renders the cells as a heatmap: one row per lock,
// hottest (highest contention rate, then most acquires) first, with a bar
// of '#' proportional to the rate. Cells with zero acquires are skipped.
func WriteContentionTable(w io.Writer, cells []ContentionCell) error {
	live := make([]ContentionCell, 0, len(cells))
	for _, c := range cells {
		if c.Acquires > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		_, err := fmt.Fprintln(w, "contention: no lock acquires recorded")
		return err
	}
	FillRates(live)
	sort.Slice(live, func(i, j int) bool {
		if live[i].Rate != live[j].Rate {
			return live[i].Rate > live[j].Rate
		}
		if live[i].Acquires != live[j].Acquires {
			return live[i].Acquires > live[j].Acquires
		}
		return live[i].Name < live[j].Name
	})
	if _, err := fmt.Fprintf(w, "%-16s %10s %10s %8s %12s  heat\n",
		"lock", "acquires", "contended", "rate", "wait"); err != nil {
		return err
	}
	for _, c := range live {
		bar := int(c.Rate*20 + 0.5)
		if c.Contended > 0 && bar == 0 {
			bar = 1 // contended at all: visibly warm
		}
		if bar > 20 {
			bar = 20
		}
		heat := make([]byte, bar)
		for i := range heat {
			heat[i] = '#'
		}
		_, err := fmt.Fprintf(w, "%-16s %10d %10d %7.2f%% %10dns  %s\n",
			c.Name, c.Acquires, c.Contended, 100*c.Rate, c.WaitNs, heat)
		if err != nil {
			return err
		}
	}
	return nil
}
