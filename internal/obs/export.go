package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTrace writes the held events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Domains
// appear as processes and data paths as named threads ("tracks") within
// them; every event is an instant event on the simulated clock (1 trace
// microsecond = 1 simulated microsecond). Output is deterministic: events
// in emission order, metadata sorted by id.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()

	// Collect the (pid, tid) pairs present so each gets metadata.
	type ptKey struct{ pid, tid int }
	pids := map[int]bool{}
	pairs := map[ptKey]bool{}
	for _, e := range evs {
		pids[pidOf(e.Domain)] = true
		pairs[ptKey{pidOf(e.Domain), tidOf(e.Path)}] = true
	}
	sortedPids := make([]int, 0, len(pids))
	for pid := range pids {
		sortedPids = append(sortedPids, pid)
	}
	sort.Ints(sortedPids)
	sortedPairs := make([]ptKey, 0, len(pairs))
	for k := range pairs {
		sortedPairs = append(sortedPairs, k)
	}
	sort.Slice(sortedPairs, func(i, j int) bool {
		if sortedPairs[i].pid != sortedPairs[j].pid {
			return sortedPairs[i].pid < sortedPairs[j].pid
		}
		return sortedPairs[i].tid < sortedPairs[j].tid
	})

	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			b.WriteString(",\n")
		}
		first = false
	}
	for _, pid := range sortedPids {
		sep()
		fmt.Fprintf(&b, `{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, jstr(t.ActorName(actorOf(pid))))
	}
	for _, k := range sortedPairs {
		sep()
		fmt.Fprintf(&b, `{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			k.pid, k.tid, jstr(t.TrackName(pathOf(k.tid))))
	}
	for _, e := range evs {
		sep()
		ns := int64(e.At)
		fmt.Fprintf(&b, `{"ph":"i","name":%s,"pid":%d,"tid":%d,"ts":%d.%03d,"s":"t","args":{"gen":%d,"arg":%d}}`,
			jstr(e.Kind.String()), pidOf(e.Domain), tidOf(e.Path), ns/1000, ns%1000, e.Gen, e.Arg)
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// tidOf maps a track id to a Chrome tid. Chrome tids are per-pid and must
// be >= 0; track NoTrack (-1, host-level events) becomes tid 0 and paths
// shift up by one.
func tidOf(path int) int { return path + 1 }

// pathOf inverts tidOf.
func pathOf(tid int) int { return tid - 1 }

// pidOf maps a trace actor to a Chrome pid the same way: actor NoActor
// (-1, ownerless events) becomes the reserved "host" pid 0 and domains
// shift up by one, keeping every exported pid non-negative.
func pidOf(domain int) int { return domain + 1 }

// actorOf inverts pidOf.
func actorOf(pid int) int { return pid - 1 }

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	data, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(data)
}

// Format renders one event as a human-readable timeline line, resolving
// actor and track names.
func (t *Tracer) Format(e Event) string {
	ns := int64(e.At)
	return fmt.Sprintf("%7d.%03dus %-14s %-12s %-12s gen=%-3d arg=%d",
		ns/1000, ns%1000, e.Kind, t.ActorName(e.Domain), t.TrackName(e.Path), e.Gen, e.Arg)
}

// WriteTimeline writes the held events as a human-readable timeline —
// the upgraded form of cmd/fbufsim's annotated trace.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, t.Format(e)); err != nil {
			return err
		}
	}
	return nil
}
