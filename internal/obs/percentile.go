package obs

// Percentile estimation for the log2 histograms. A log2 bucket only bounds
// a sample to [2^(i-1), 2^i - 1], so exact quantiles are unrecoverable; the
// estimator linearly interpolates the target rank's position within its
// bucket — the standard trade the profiler accepts for O(1) memory. The
// result is always clamped to the histogram's observed [Min, Max], which
// makes single-sample and single-bucket histograms exact at the extremes.

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of the
// snapshot's samples. Returns 0 for an empty histogram.
func (hs HistogramSnapshot) Quantile(q float64) int64 {
	if hs.Count == 0 {
		return 0
	}
	// The extremes are known exactly; only interior quantiles estimate.
	if q <= 0 {
		return hs.Min
	}
	if q >= 1 {
		return hs.Max
	}
	// Target rank in [1, Count] (nearest-rank, then interpolated within
	// the bucket that holds it).
	target := q * float64(hs.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for _, b := range hs.Buckets {
		n := float64(b.N)
		if cum+n >= target {
			// frac in [0, 1): how far into this bucket the rank falls.
			frac := (target - cum - 1) / n
			if frac < 0 {
				frac = 0
			}
			lo, hi := float64(b.Lo), float64(b.Hi)
			// Bucket 0 reports [0, 0] but holds every v <= 0; use the
			// observed minimum as its lower edge.
			if b.Lo == 0 && b.Hi == 0 && hs.Min < 0 {
				lo = float64(hs.Min)
			}
			v := lo + frac*(hi-lo)
			// Clamp in float space first: near MaxInt64 the int64
			// conversion of v+0.5 could overflow.
			if v >= float64(hs.Max) {
				return hs.Max
			}
			if v <= float64(hs.Min) {
				return hs.Min
			}
			return clampInt64(int64(v+0.5), hs.Min, hs.Max)
		}
		cum += n
	}
	// Rounding slack: the rank fell off the end; return the max.
	return hs.Max
}

// Percentile is Quantile with p expressed in percent (50, 90, 99).
func (hs HistogramSnapshot) Percentile(p float64) int64 {
	return hs.Quantile(p / 100)
}

// Quantile snapshots the live histogram and estimates the q-quantile.
// Safe on nil (returns 0).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

// Percentile is Quantile with p expressed in percent (50, 90, 99).
// Safe on nil (returns 0).
func (h *Histogram) Percentile(p float64) int64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Percentile(p)
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
