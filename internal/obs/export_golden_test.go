package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbufs/internal/simtime"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a deterministic event stream exercising the
// exporter's corners: the reserved pid-0 host track (NoActor/NoTrack
// events), named and unnamed actors, and sub-microsecond timestamps.
func goldenTracer() *Tracer {
	tr := NewTracer(64)
	var now simtime.Time
	tr.SetNow(func() simtime.Time { return now })
	tr.SetActor(0, "kernel")
	tr.SetActor(1, "app")
	tr.SetTrack(0, "tx-data")

	now = 0
	tr.Emit(EvAlloc, 0, 0, 1, 4)
	now = 1500 // 1.5 us: exercises the fractional-microsecond format
	tr.Emit(EvTransfer, 0, 0, 1, 4)
	now = 2000
	tr.Emit(EvMappingBuilt, 1, 0, 1, 4)
	now = 110_000
	tr.Emit(EvFree, 1, 0, 1, 4)
	// Host-level event: NoActor/NoTrack must land on the reserved pid 0.
	now = 111_003
	tr.Emit(EvLinkFault, NoActor, NoTrack, 0, 1)
	// An actor with no registered name falls back to "domain N".
	now = 120_000
	tr.Emit(EvRecycle, 7, NoTrack, 2, 4)
	return tr
}

// TestChromeTraceGolden pins the exporter's exact output: stable ordering
// (metadata sorted, events in emission order) and the reserved pid 0 host
// process. Any intentional format change is made visible by regenerating
// with `go test ./internal/obs -run ChromeTraceGolden -update`.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace output differs from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Structural invariants, independent of the exact bytes.
	var parsed struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	var pid0Name string
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.Pid == 0 {
			pid0Name = e.Args.Name
		}
		if e.Pid < 0 || e.Tid < 0 {
			t.Errorf("negative pid/tid in event %+v", e)
		}
	}
	if pid0Name != "host" {
		t.Errorf("reserved pid 0 named %q, want \"host\"", pid0Name)
	}
	// Metadata must precede all instant events (stable section ordering).
	lastMeta, firstInstant := -1, -1
	for i, e := range parsed.TraceEvents {
		switch e.Ph {
		case "M":
			lastMeta = i
		case "i":
			if firstInstant < 0 {
				firstInstant = i
			}
		}
	}
	if firstInstant >= 0 && lastMeta > firstInstant {
		t.Error("metadata events interleaved with instant events")
	}
}

// TestChromeTraceDeterministic renders the same stream twice and expects
// byte-identical output.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	tr := goldenTracer()
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same tracer differ")
	}
	if !strings.HasSuffix(a.String(), "\"displayTimeUnit\":\"ns\"}\n") {
		t.Error("output missing displayTimeUnit suffix")
	}
}
