package span

import (
	"testing"

	"fbufs/internal/simtime"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if id := r.BeginTrace(0, "t", 0); id != 0 {
		t.Fatalf("nil BeginTrace = %d, want 0", id)
	}
	r.Begin(StageAlloc, "core", 1, 0, 0)
	r.End(10)
	r.EndTrace(1, 10)
	r.Resume(1)
	r.AbortTrace(1)
	r.OnComplete(nil)
	if r.Current() != 0 || r.Completed() != nil || r.OpenCount() != 0 ||
		r.CompletedCount() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}

func TestTraceNesting(t *testing.T) {
	r := NewRecorder(8)
	id := r.BeginTrace(100, "t", 4096)
	if id == 0 || r.Current() != id {
		t.Fatalf("BeginTrace: id=%d current=%d", id, r.Current())
	}
	r.Begin(StageIPC, "ipc", 0, 110, 1) // outer
	r.Begin(StageAlloc, "core", 1, 120, 2)
	r.End(150) // alloc
	r.End(200) // ipc
	r.EndTrace(id, 300)

	done := r.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d traces, want 1", len(done))
	}
	tr := done[0]
	if tr.ID != id || tr.Start != 100 || tr.End != 300 || tr.Arg != 4096 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Dur() != 200 {
		t.Fatalf("trace dur = %v, want 200", tr.Dur())
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (root + 2)", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.ID != RootID || root.Stage != StageTransfer || root.Dur() != 200 {
		t.Fatalf("root = %+v", root)
	}
	// Completion order: innermost ends first.
	alloc, ipc := tr.Spans[1], tr.Spans[2]
	if alloc.Stage != StageAlloc || alloc.Dur() != 30 {
		t.Fatalf("alloc = %+v", alloc)
	}
	if ipc.Stage != StageIPC || ipc.Dur() != 90 || ipc.Parent != RootID {
		t.Fatalf("ipc = %+v", ipc)
	}
	if alloc.Parent != ipc.ID {
		t.Fatalf("alloc.Parent = %d, want nested under ipc %d", alloc.Parent, ipc.ID)
	}
}

// The sink's Deliver ends the trace while the delivery chain's spans are
// still open; the trace must finalize only once they unwind, with the end
// time recorded at the sink.
func TestEndTraceDefersUntilStackUnwinds(t *testing.T) {
	r := NewRecorder(4)
	var got []Trace
	r.OnComplete(func(tr Trace) { got = append(got, tr) })

	id := r.BeginTrace(0, "t", 0)
	r.Begin(StageProto, "udp", 0, 10, 0)
	r.EndTrace(id, 50) // sink delivery inside udp.Deliver
	if len(got) != 0 || r.CompletedCount() != 0 {
		t.Fatal("trace finalized with spans still open")
	}
	r.End(60) // udp.Deliver unwinds after the sink
	if len(got) != 1 {
		t.Fatalf("completed = %d, want 1", len(got))
	}
	if got[0].End != 50 {
		t.Fatalf("trace end = %v, want sink time 50", got[0].End)
	}
	if got[0].Spans[1].End != 60 {
		t.Fatalf("proto span end = %v, want 60", got[0].Spans[1].End)
	}
}

func TestResumeCrossHost(t *testing.T) {
	r := NewRecorder(4)
	id := r.BeginTrace(0, "t", 0)
	r.Begin(StageDMA, "driver", 0, 10, 0)
	r.End(20)
	r.Resume(0) // activation boundary: back to the scheduler

	// Peer host's receive interrupt resumes the stamped trace.
	r.Resume(id)
	r.Begin(StageDMA, "driver", 100, 200, 0)
	r.End(230)
	r.EndTrace(id, 250)

	done := r.Completed()
	if len(done) != 1 || len(done[0].Spans) != 3 {
		t.Fatalf("completed = %+v", done)
	}
	if done[0].Spans[2].Actor != 100 {
		t.Fatalf("rx span actor = %d, want 100", done[0].Spans[2].Actor)
	}
}

func TestSpansOutsideTraceAreDropped(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(StageAlloc, "core", 0, 0, 0)
	r.End(10)
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	// Resuming a completed/unknown trace discards spans harmlessly.
	r.Resume(999)
	r.Begin(StageAlloc, "core", 0, 0, 0)
	r.End(10)
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	if r.CompletedCount() != 0 {
		t.Fatal("no trace should have completed")
	}
}

func TestAbortTrace(t *testing.T) {
	r := NewRecorder(4)
	id := r.BeginTrace(0, "t", 0)
	r.Begin(StageAlloc, "core", 0, 0, 0)
	r.AbortTrace(id)
	r.End(10) // drains without effect
	r.EndTrace(id, 20)
	if r.CompletedCount() != 0 {
		t.Fatal("aborted trace completed")
	}
	if r.Current() != 0 {
		t.Fatalf("current = %d after abort", r.Current())
	}
}

func TestOpenTraceBound(t *testing.T) {
	r := NewRecorder(4)
	r.maxOpen = 3
	first := r.BeginTrace(0, "t", 0)
	for i := 0; i < 3; i++ {
		r.BeginTrace(simtime.Time(i), "t", 0)
	}
	if r.OpenCount() != 3 {
		t.Fatalf("open = %d, want bound 3", r.OpenCount())
	}
	// The oldest was evicted; ending it is a no-op.
	r.EndTrace(first, 100)
	if r.CompletedCount() != 0 {
		t.Fatal("evicted trace completed")
	}
}

func TestCompletedRingWraps(t *testing.T) {
	r := NewRecorder(2)
	var ids []uint64
	for i := 0; i < 5; i++ {
		id := r.BeginTrace(simtime.Time(i), "t", 0)
		ids = append(ids, id)
		r.EndTrace(id, simtime.Time(i+10))
	}
	done := r.Completed()
	if len(done) != 2 {
		t.Fatalf("retained = %d, want 2", len(done))
	}
	if done[0].ID != ids[3] || done[1].ID != ids[4] {
		t.Fatalf("retained wrong traces: %d, %d", done[0].ID, done[1].ID)
	}
	if r.CompletedCount() != 5 {
		t.Fatalf("completed count = %d, want 5", r.CompletedCount())
	}
}

func TestStageString(t *testing.T) {
	if StageAlloc.String() != "alloc" || StageTransfer.String() != "transfer" {
		t.Fatal("stage names wrong")
	}
	if Stage(200).String() != "stage(?)" {
		t.Fatal("out-of-range stage name")
	}
}
