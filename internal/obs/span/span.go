// Package span implements per-transfer tracing on the simulated clock:
// every cross-domain transfer gets a trace ID that is carried through the
// whole data path (vm -> core -> ipc -> aggregate -> osiris -> protocols ->
// netsim), and every stage of the transfer (allocation, mapping, security,
// the IPC crossing, protocol processing, DMA, link occupancy, free/notice)
// records a child span charged in simulated time.
//
// The recorder mirrors the paper's evaluation need: Figure 5's argument is
// a cost-attribution argument (control transfer dominates the cached path,
// per-page work is marginal), so the profiler built on these spans
// (internal/obs/profile) must know *where a given transfer's time went*,
// not just the aggregate throughput.
//
// The package deliberately imports only simtime so every layer of the
// simulation can depend on it without cycles. A nil *Recorder is valid and
// ignores every call — the disabled fast path, matching the obs package's
// nil-observer discipline.
//
// Concurrency: the recorder is mutex-guarded so a shared observer does not
// race, but the begin/end stack assumes *sequential* emission — the
// single-threaded event-driven simulation. The SMP bench harness does not
// attach a span recorder.
package span

import (
	"sync"

	"fbufs/internal/simtime"
)

// Stage classifies what a span's time was spent on — the paper's cost
// taxonomy as a small closed enum so the profiler can fold by stage.
type Stage uint8

// Stage values. StageTransfer is reserved for the synthesized root span of
// a trace; StageWait is synthesized by the profiler for root time not
// covered by any child (queueing, scheduling, link propagation gaps).
const (
	StageNone Stage = iota
	StageTransfer
	StageAlloc
	StageMap
	StageSecure
	StageIPC
	StageProto
	StageDMA
	StageLink
	StageFree
	StageNotice
	StageFault
	StageCopy
	StageWait
	StageRing

	numStages
)

var stageNames = [numStages]string{
	StageNone:     "none",
	StageTransfer: "transfer",
	StageAlloc:    "alloc",
	StageMap:      "map",
	StageSecure:   "secure",
	StageIPC:      "ipc",
	StageProto:    "proto",
	StageDMA:      "dma",
	StageLink:     "link",
	StageFree:     "free",
	StageNotice:   "notice",
	StageFault:    "fault",
	StageCopy:     "copy",
	StageWait:     "wait",
	StageRing:     "ring",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(?)"
}

// RootID is the span ID of the synthesized per-trace root span; child spans
// recorded while no other span was open have Parent == RootID.
const RootID = 1

// NoActor marks a span not attributable to a domain (mirrors obs.NoActor).
const NoActor = -1

// Span is one timed stage of a transfer.
type Span struct {
	Trace  uint64       // owning trace ID (0: recorded outside any trace)
	ID     uint32       // per-trace span ID; RootID for the root
	Parent uint32       // enclosing span's ID, RootID for top-level spans
	Stage  Stage        //
	Layer  string       // emitting layer ("core", "ipc", "udp", "driver", ...)
	Actor  int          // domain ID + host trace base, or NoActor
	Start  simtime.Time //
	End    simtime.Time //
	Arg    int64        // stage-specific payload (pages, bytes, descriptors)
}

// Dur is the span's inclusive duration.
func (s Span) Dur() simtime.Duration { return simtime.Duration(s.End - s.Start) }

// Trace is one completed end-to-end transfer: the root interval plus every
// child span, in completion order. Spans[0] is always the synthesized root
// (ID RootID, Stage StageTransfer).
type Trace struct {
	ID    uint64
	Label string // transfer class ("data", "ack", "hop"): the profiler's path key
	Start simtime.Time
	End   simtime.Time
	Arg   int64 // trace payload (message bytes)
	Spans []Span
}

// Dur is the end-to-end duration of the transfer.
func (t Trace) Dur() simtime.Duration { return simtime.Duration(t.End - t.Start) }

// openTrace accumulates completed spans for a trace that has not finished.
type openTrace struct {
	start  simtime.Time
	label  string
	arg    int64
	nextID uint32
	spans  []Span
	// ending is set once EndTrace ran while stack spans of this trace were
	// still open (the sink's Deliver ends the trace before the delivery
	// chain unwinds); the trace finalizes when the last of them ends.
	ending bool
	endAt  simtime.Time
}

// Recorder collects spans into traces. It keeps a bounded ring of the most
// recently completed traces (the flight recorder's raw material) and
// invokes an optional completion callback (the profiler's feed).
type Recorder struct {
	mu        sync.Mutex
	nextTrace uint64
	cur       uint64 // trace the current activation charges spans to
	stack     []Span // open spans, innermost last
	open      map[uint64]*openTrace
	done      []Trace // ring of completed traces
	next, n   int
	completed uint64 // traces ever completed
	dropped   uint64 // spans or traces discarded by bounds

	onComplete func(Trace)

	maxOpen  int // open-trace bound: oldest aborted beyond this
	maxSpans int // per-trace span bound: excess spans dropped
}

// Defaults for the recorder's bounds; generous for the simulation's message
// sizes (a 1 MB fig5 message is ~64 PDUs, each a handful of spans).
const (
	defaultMaxOpen  = 256
	defaultMaxSpans = 4096
)

// NewRecorder creates a recorder that retains the last completedCap traces.
func NewRecorder(completedCap int) *Recorder {
	if completedCap < 1 {
		completedCap = 1
	}
	return &Recorder{
		open:     make(map[uint64]*openTrace),
		done:     make([]Trace, completedCap),
		maxOpen:  defaultMaxOpen,
		maxSpans: defaultMaxSpans,
	}
}

// OnComplete installs a callback invoked (outside the recorder's lock) with
// every completed trace. Safe on nil.
func (r *Recorder) OnComplete(fn func(Trace)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onComplete = fn
	r.mu.Unlock()
}

// BeginTrace opens a new trace starting now and makes it current. label
// names the transfer class (the profiler's per-path key); arg is the trace
// payload (message bytes). Returns the trace ID (never 0).
func (r *Recorder) BeginTrace(now simtime.Time, label string, arg int64) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) >= r.maxOpen {
		// Evict the oldest open trace — a lossy-link run never finishes
		// traces whose PDUs were dropped, and the recorder must stay bounded.
		var oldest uint64
		for id := range r.open {
			if oldest == 0 || id < oldest {
				oldest = id
			}
		}
		delete(r.open, oldest)
		r.dropped++
	}
	r.nextTrace++
	id := r.nextTrace
	r.open[id] = &openTrace{start: now, label: label, arg: arg, nextID: RootID + 1}
	r.cur = id
	return id
}

// Record appends an already-timed span to a trace, bypassing the begin/end
// stack — for intervals whose start and end are known on the scheduler
// timeline rather than bracketing the caller's own execution (a PDU's link
// occupancy, a DMA window). The span becomes a direct child of the root.
func (r *Recorder) Record(trace uint64, stage Stage, layer string, actor int, start, end simtime.Time, arg int64) {
	if r == nil || trace == 0 {
		return
	}
	r.mu.Lock()
	ot := r.open[trace]
	if ot == nil {
		r.dropped++
		r.mu.Unlock()
		return
	}
	if len(ot.spans) >= r.maxSpans {
		r.dropped++
		r.mu.Unlock()
		return
	}
	s := Span{
		Trace: trace, ID: ot.nextID, Parent: RootID, Stage: stage,
		Layer: layer, Actor: actor, Start: start, End: end, Arg: arg,
	}
	ot.nextID++
	ot.spans = append(ot.spans, s)
	r.mu.Unlock()
}

// Current returns the trace the current activation charges spans to (0 when
// none) — the value to stamp on a PDU that crosses to another host.
func (r *Recorder) Current() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Resume makes trace id current — called at the start of an activation that
// continues a transfer begun elsewhere (the receive interrupt for a PDU
// stamped with the trace, a deferred notice delivery). Resuming an unknown
// or completed trace is harmless: its spans are discarded.
func (r *Recorder) Resume(id uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cur = id
	r.mu.Unlock()
}

// Begin opens a span at now charged to the current trace. Every Begin must
// be paired with an End on all return paths (the fbufvet obshook analyzer
// enforces this statically).
func (r *Recorder) Begin(stage Stage, layer string, actor int, now simtime.Time, arg int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := Span{Trace: r.cur, Stage: stage, Layer: layer, Actor: actor, Start: now, Arg: arg}
	if ot := r.open[r.cur]; r.cur != 0 && ot != nil {
		s.ID = ot.nextID
		ot.nextID++
		s.Parent = RootID
		if n := len(r.stack); n > 0 && r.stack[n-1].Trace == r.cur {
			s.Parent = r.stack[n-1].ID
		}
	}
	r.stack = append(r.stack, s)
	r.mu.Unlock()
}

// End closes the innermost open span at now. An End with no open span is
// ignored (the static pairing check makes this unreachable in-tree).
func (r *Recorder) End(now simtime.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	n := len(r.stack)
	if n == 0 {
		r.mu.Unlock()
		return
	}
	s := r.stack[n-1]
	r.stack = r.stack[:n-1]
	s.End = now
	var fin *Trace
	if ot := r.open[s.Trace]; s.Trace != 0 && ot != nil {
		if len(ot.spans) < r.maxSpans {
			ot.spans = append(ot.spans, s)
		} else {
			r.dropped++
		}
		if ot.ending && !r.traceOnStackLocked(s.Trace) {
			fin = r.finalizeLocked(s.Trace, ot)
		}
	} else {
		r.dropped++
	}
	cb := r.onComplete
	r.mu.Unlock()
	if fin != nil && cb != nil {
		cb(*fin)
	}
}

// EndTrace completes trace id at now — called where the transfer logically
// ends (the sink's Deliver). If spans of the trace are still open on the
// stack (the delivery chain has not unwound yet), finalization is deferred
// until the last of them ends; the recorded end time is still now.
func (r *Recorder) EndTrace(id uint64, now simtime.Time) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	ot := r.open[id]
	if ot == nil {
		r.mu.Unlock()
		return
	}
	ot.ending = true
	ot.endAt = now
	var fin *Trace
	if !r.traceOnStackLocked(id) {
		fin = r.finalizeLocked(id, ot)
	}
	cb := r.onComplete
	r.mu.Unlock()
	if fin != nil && cb != nil {
		cb(*fin)
	}
}

// AbortTrace discards an open trace (transfer failed; its spans are not
// folded into profiles). Spans of the trace still on the stack drain
// harmlessly when they end.
func (r *Recorder) AbortTrace(id uint64) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if _, ok := r.open[id]; ok {
		delete(r.open, id)
		r.dropped++
	}
	if r.cur == id {
		r.cur = 0
	}
	r.mu.Unlock()
}

// traceOnStackLocked reports whether any open span belongs to trace id.
func (r *Recorder) traceOnStackLocked(id uint64) bool {
	for i := range r.stack {
		if r.stack[i].Trace == id {
			return true
		}
	}
	return false
}

// finalizeLocked moves an open trace to the completed ring and returns it.
func (r *Recorder) finalizeLocked(id uint64, ot *openTrace) *Trace {
	delete(r.open, id)
	if r.cur == id {
		r.cur = 0
	}
	spans := make([]Span, 0, len(ot.spans)+1)
	spans = append(spans, Span{
		Trace: id, ID: RootID, Stage: StageTransfer, Layer: "e2e",
		Actor: NoActor, Start: ot.start, End: ot.endAt, Arg: ot.arg,
	})
	spans = append(spans, ot.spans...)
	t := Trace{ID: id, Label: ot.label, Start: ot.start, End: ot.endAt, Arg: ot.arg, Spans: spans}
	r.done[r.next] = t
	r.next++
	if r.next == len(r.done) {
		r.next = 0
	}
	if r.n < len(r.done) {
		r.n++
	}
	r.completed++
	return &t
}

// Completed returns the retained completed traces, oldest first.
func (r *Recorder) Completed() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil
	}
	out := make([]Trace, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.done)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.done[(start+i)%len(r.done)])
	}
	return out
}

// CompletedCount returns the number of traces ever completed.
func (r *Recorder) CompletedCount() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

// OpenCount returns the number of traces begun but not yet completed.
func (r *Recorder) OpenCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Dropped returns how many spans and traces the bounds discarded.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
