// Package obs is the unified observability layer: a low-overhead structured
// event tracer on the simulated clock plus a registry of named counters,
// gauges, and log-scale histograms. Every layer of the stack (vm, core,
// protocols, osiris, netsim) emits through an *Observer attached to the
// host's vm.System; when no observer is attached every hook is a nil-check
// and the simulation's costs and results are bit-identical to running
// without the package.
//
// Events are stamped with simulated time, a trace actor (domain ID plus the
// host's trace base), a track (data-path ID plus trace base, or -1), and
// the fbuf's recycle generation, so a Chrome trace-event export shows
// domains as processes and data paths as tracks in Perfetto.
package obs

import (
	"sync"

	"fbufs/internal/obs/span"
	"fbufs/internal/simtime"
)

// EventKind enumerates the traced operations — the paper's cost taxonomy
// (allocation, mapping, protection, free/notice, TLB, device) as discrete
// events.
type EventKind uint8

// Event kinds. The zero value is reserved so an all-zero Event is
// recognizably empty.
const (
	EvNone EventKind = iota
	EvAlloc
	EvCacheHit
	EvCacheMiss
	EvCarve
	EvTransfer
	EvMappingBuilt
	EvSecure
	EvFree
	EvRecycle
	EvNoticeQueued
	EvNoticePiggy
	EvNoticeExplicit
	EvFrameReclaimed
	EvTLBMiss
	EvPageFault
	EvPktSend
	EvPktRecv
	EvDMAStart
	EvDMADone
	EvAllocFailed
	EvCopyFallback
	EvCopyRecover
	EvLinkFault
	EvCRCDrop
	EvDomainCrash
	EvPathEvict
	EvAdmissionReject
	EvNoticeRing

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvNone:            "None",
	EvAlloc:           "Alloc",
	EvCacheHit:        "CacheHit",
	EvCacheMiss:       "CacheMiss",
	EvCarve:           "Carve",
	EvTransfer:        "Transfer",
	EvMappingBuilt:    "MappingBuilt",
	EvSecure:          "Secure",
	EvFree:            "Free",
	EvRecycle:         "Recycle",
	EvNoticeQueued:    "NoticeQueued",
	EvNoticePiggy:     "NoticePiggy",
	EvNoticeExplicit:  "NoticeExplicit",
	EvFrameReclaimed:  "FrameReclaimed",
	EvTLBMiss:         "TLBMiss",
	EvPageFault:       "PageFault",
	EvPktSend:         "PktSend",
	EvPktRecv:         "PktRecv",
	EvDMAStart:        "DMAStart",
	EvDMADone:         "DMADone",
	EvAllocFailed:     "AllocFailed",
	EvCopyFallback:    "CopyFallback",
	EvCopyRecover:     "CopyRecover",
	EvLinkFault:       "LinkFault",
	EvCRCDrop:         "CRCDrop",
	EvDomainCrash:     "DomainCrash",
	EvPathEvict:       "PathEvict",
	EvAdmissionReject: "AdmissionReject",
	EvNoticeRing:      "NoticeRing",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "EventKind(?)"
}

// NoTrack marks an event not associated with any data path (and NoActor an
// event not attributable to a domain).
const (
	NoActor = -1
	NoTrack = -1
)

// Event is one traced operation.
type Event struct {
	At     simtime.Time // simulated timestamp
	Kind   EventKind
	Domain int    // trace actor: domain ID + host trace base, or NoActor
	Path   int    // trace track: path ID + host trace base, or NoTrack
	Gen    uint64 // fbuf recycle generation, 0 when not fbuf-related
	Arg    int64  // kind-specific payload (pages, bytes, VPN, batch size)
}

// Tracer is a bounded ring buffer of events. A nil *Tracer is valid and
// ignores every call — the disabled fast path. The ring is guarded by a
// mutex so concurrent workers can emit into one tracer; interleaving of
// events from different workers is scheduler-dependent, which is why the
// deterministic-trace tests run in the single-threaded default mode.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // next write slot
	n     int    // valid events, <= len(buf)
	total uint64 // events ever emitted (sequence numbers)

	now    func() simtime.Time
	actors map[int]string // trace actor id -> display name
	tracks map[int]string // trace track id -> display name
}

// NewTracer creates a tracer holding at most capacity events; older events
// are overwritten once the ring fills.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		buf:    make([]Event, capacity),
		actors: make(map[int]string),
		tracks: make(map[int]string),
	}
}

// SetNow installs the simulated-clock reader used to stamp events.
func (t *Tracer) SetNow(fn func() simtime.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = fn
	t.mu.Unlock()
}

// Emit records one event. Safe on a nil receiver (tracing disabled) and on
// a zero-value Tracer not built via NewTracer (no ring: events are dropped).
func (t *Tracer) Emit(kind EventKind, domain, path int, gen uint64, arg int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) == 0 {
		t.mu.Unlock()
		return
	}
	var at simtime.Time
	if t.now != nil {
		at = t.now()
	}
	t.buf[t.next] = Event{At: at, Kind: kind, Domain: domain, Path: path, Gen: gen, Arg: arg}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Count returns the number of events currently held.
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}

// eventsLocked copies out the held events; t.mu must be held.
func (t *Tracer) eventsLocked() []Event {
	if t.n == 0 {
		return nil
	}
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Events returns the held events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

// Since returns the events emitted at or after sequence number seq (as
// returned by Total before an operation) that are still in the buffer.
func (t *Tracer) Since(seq uint64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := t.eventsLocked()
	first := t.total - uint64(len(evs)) // sequence number of evs[0]
	if seq <= first {
		return evs
	}
	if seq >= t.total {
		return nil
	}
	return evs[seq-first:]
}

// SetActor names a trace actor (a domain) for the exporters.
func (t *Tracer) SetActor(id int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.actors == nil {
		t.actors = make(map[int]string)
	}
	t.actors[id] = name
	t.mu.Unlock()
}

// SetTrack names a trace track (a data path) for the exporters.
func (t *Tracer) SetTrack(id int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.tracks == nil {
		t.tracks = make(map[int]string)
	}
	t.tracks[id] = name
	t.mu.Unlock()
}

// ActorName returns the display name for an actor id.
func (t *Tracer) ActorName(id int) string {
	if t != nil {
		t.mu.Lock()
		n, ok := t.actors[id]
		t.mu.Unlock()
		if ok {
			return n
		}
	}
	if id == NoActor {
		return "host"
	}
	return "domain " + itoa(id)
}

// TrackName returns the display name for a track id.
func (t *Tracer) TrackName(id int) string {
	if t != nil {
		t.mu.Lock()
		n, ok := t.tracks[id]
		t.mu.Unlock()
		if ok {
			return n
		}
	}
	if id == NoTrack {
		return "host"
	}
	return "path " + itoa(id)
}

// Observer bundles a tracer, a metrics registry, and an optional span
// recorder; it is the single handle the simulation layers hold. A nil
// *Observer disables everything, and a nil Spans disables per-transfer
// tracing while events and metrics stay live.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Spans   *span.Recorder

	now func() simtime.Time
	// spanNow, when set, overrides now for span timestamps only. The
	// netsim Host.Exec installs it so spans inside a metered task see
	// simulated time advance with the task's charges (the scheduler clock
	// is frozen for the task's whole activation); event timestamps keep
	// the scheduler clock so deterministic traces are unchanged.
	spanNow func() simtime.Time
}

// New creates an observer with an event ring of the given capacity and an
// empty metrics registry.
func New(eventCap int) *Observer {
	return &Observer{Tracer: NewTracer(eventCap), Metrics: NewRegistry()}
}

// SetNow installs the simulated-clock reader (for event stamps and latency
// measurements). Safe on nil.
func (o *Observer) SetNow(fn func() simtime.Time) {
	if o == nil {
		return
	}
	o.now = fn
	o.Tracer.SetNow(fn)
}

// Now reads the attached simulated clock; zero when none is attached.
func (o *Observer) Now() simtime.Time {
	if o == nil || o.now == nil {
		return 0
	}
	return o.now()
}

// Emit records an event through the tracer. Safe on nil.
func (o *Observer) Emit(kind EventKind, domain, path int, gen uint64, arg int64) {
	if o == nil {
		return
	}
	o.Tracer.Emit(kind, domain, path, gen, arg)
}

// PublishSelfMetrics writes the tracer's own ring statistics into the
// observer's registry: events ever emitted, events lost to ring wraparound,
// and events currently held. Exporters call this before snapshotting so
// trace truncation under load (e.g. the chaos harness) is visible in the
// metrics JSON rather than only via Tracer.Dropped in tests. Safe on nil.
func (o *Observer) PublishSelfMetrics() {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Counter("obs.events_total").Set(o.Tracer.Total())
	o.Metrics.Counter("obs.events_dropped").Set(o.Tracer.Dropped())
	o.Metrics.Gauge("obs.events_held").Set(int64(o.Tracer.Count()))
}

// Observe records a histogram sample by name. Hot paths should cache the
// *Histogram instead; this is the convenience form. Safe on nil.
func (o *Observer) Observe(name string, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Histogram(name).Observe(v)
}

// SetSpanNow installs (or, with nil, removes) a clock override used only
// for span timestamps. Safe on nil.
func (o *Observer) SetSpanNow(fn func() simtime.Time) {
	if o == nil {
		return
	}
	o.spanNow = fn
}

// SpanNow reads the span clock: the override when installed, else the
// attached simulated clock. Safe on nil.
func (o *Observer) SpanNow() simtime.Time {
	if o == nil {
		return 0
	}
	if o.spanNow != nil {
		return o.spanNow()
	}
	if o.now != nil {
		return o.now()
	}
	return 0
}

// SpanBegin opens a child span of the current trace. Every SpanBegin must
// be paired with a SpanEnd on all return paths (the fbufvet obshook
// analyzer enforces the pairing statically). Safe on nil.
func (o *Observer) SpanBegin(stage span.Stage, layer string, actor int, arg int64) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.Begin(stage, layer, actor, o.SpanNow(), arg)
}

// SpanEnd closes the innermost open span. Safe on nil.
func (o *Observer) SpanEnd() {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.End(o.SpanNow())
}

// BeginTrace opens a new transfer trace (label: transfer class, arg:
// message bytes) and makes it current; returns 0 when span recording is
// disabled. Safe on nil.
func (o *Observer) BeginTrace(label string, arg int64) uint64 {
	if o == nil || o.Spans == nil {
		return 0
	}
	return o.Spans.BeginTrace(o.SpanNow(), label, arg)
}

// AbortTrace discards an open trace (the transfer failed). Safe on nil.
func (o *Observer) AbortTrace(id uint64) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.AbortTrace(id)
}

// SpanRecord appends an already-timed span to a trace (link occupancy, DMA
// windows — intervals timed on the scheduler timeline rather than
// bracketing the caller's execution). Safe on nil.
func (o *Observer) SpanRecord(trace uint64, stage span.Stage, layer string, actor int, start, end simtime.Time, arg int64) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.Record(trace, stage, layer, actor, start, end, arg)
}

// EndTrace completes a transfer trace at the current span clock. Safe on
// nil; ending trace 0 (recording disabled) is a no-op.
func (o *Observer) EndTrace(id uint64) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.EndTrace(id, o.SpanNow())
}

// ResumeTrace makes a trace current — the receive side of a cross-host
// transfer whose PDUs carry the trace ID. Safe on nil.
func (o *Observer) ResumeTrace(id uint64) {
	if o == nil || o.Spans == nil {
		return
	}
	o.Spans.Resume(id)
}

// CurrentTrace returns the trace the current activation charges spans to
// (0 when none) — the value stamped on outgoing PDUs. Safe on nil.
func (o *Observer) CurrentTrace() uint64 {
	if o == nil || o.Spans == nil {
		return 0
	}
	return o.Spans.Current()
}

// itoa is strconv.Itoa without the import (keeps the hot-path file lean).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
