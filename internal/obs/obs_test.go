package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fbufs/internal/simtime"
)

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	var now simtime.Time
	tr.SetNow(func() simtime.Time { return now })
	for i := 0; i < 10; i++ {
		now = simtime.Time(i * 100)
		tr.Emit(EvAlloc, 1, 0, uint64(i), int64(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("total %d", tr.Total())
	}
	if tr.Count() != 4 {
		t.Fatalf("count %d", tr.Count())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events %d", len(evs))
	}
	for i, e := range evs {
		want := int64(6 + i) // oldest surviving is #6
		if e.Arg != want || e.At != simtime.Time(want*100) {
			t.Fatalf("event %d: arg=%d at=%v, want arg=%d", i, e.Arg, e.At, want)
		}
	}
}

func TestEventOrderingOnSimulatedClock(t *testing.T) {
	tr := NewTracer(64)
	clk := &simtime.Clock{}
	tr.SetNow(clk.Now)
	stamps := []simtime.Duration{0, 30, 0, 2500, 1}
	for i, d := range stamps {
		clk.Advance(d)
		tr.Emit(EvTransfer, 0, 0, 0, int64(i))
	}
	evs := tr.Events()
	if len(evs) != len(stamps) {
		t.Fatalf("events %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("event %d at %v precedes event %d at %v", i, evs[i].At, i-1, evs[i-1].At)
		}
		if evs[i].Arg <= evs[i-1].Arg {
			t.Fatal("emission order lost")
		}
	}
}

func TestSince(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Emit(EvFree, 0, 0, 0, int64(i))
	}
	mark := tr.Total()
	tr.Emit(EvRecycle, 0, 0, 0, 3)
	tr.Emit(EvRecycle, 0, 0, 0, 4)
	got := tr.Since(mark)
	if len(got) != 2 || got[0].Arg != 3 || got[1].Arg != 4 {
		t.Fatalf("since: %+v", got)
	}
	// A mark older than the ring start returns everything held.
	for i := 0; i < 10; i++ {
		tr.Emit(EvFree, 0, 0, 0, 0)
	}
	if n := len(tr.Since(0)); n != 4 {
		t.Fatalf("since(0) after wrap: %d events", n)
	}
	if n := len(tr.Since(tr.Total())); n != 0 {
		t.Fatalf("since(total): %d events", n)
	}
}

// TestChromeTraceRoundTrip checks the export both against a golden literal
// (byte-level format stability) and through encoding/json (validity).
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	var now simtime.Time
	tr.SetNow(func() simtime.Time { return now })
	tr.SetActor(1, "app")
	tr.SetTrack(0, "video")
	now = 1500 // 1.5 us
	tr.Emit(EvAlloc, 1, 0, 7, 4)
	now = 2001
	tr.Emit(EvTLBMiss, 1, NoTrack, 0, 99)
	now = 2500
	tr.Emit(EvTLBMiss, NoActor, NoTrack, 0, 55) // ownerless: reserved pid 0

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{"traceEvents":[
{"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":"host"}},
{"ph":"M","name":"process_name","pid":2,"tid":0,"args":{"name":"app"}},
{"ph":"M","name":"thread_name","pid":0,"tid":0,"args":{"name":"host"}},
{"ph":"M","name":"thread_name","pid":2,"tid":0,"args":{"name":"host"}},
{"ph":"M","name":"thread_name","pid":2,"tid":1,"args":{"name":"video"}},
{"ph":"i","name":"Alloc","pid":2,"tid":1,"ts":1.500,"s":"t","args":{"gen":7,"arg":4}},
{"ph":"i","name":"TLBMiss","pid":2,"tid":0,"ts":2.001,"s":"t","args":{"gen":0,"arg":99}},
{"ph":"i","name":"TLBMiss","pid":0,"tid":0,"ts":2.500,"s":"t","args":{"gen":0,"arg":55}}
],"displayTimeUnit":"ns"}
`
	if buf.String() != golden {
		t.Fatalf("export differs from golden:\n%s", buf.String())
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Args struct {
				Gen uint64 `json:"gen"`
				Arg int64  `json:"arg"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events", len(doc.TraceEvents))
	}
	e := doc.TraceEvents[5]
	if e.Ph != "i" || e.Name != "Alloc" || e.Pid != 2 || e.Tid != 1 || e.Ts != 1.5 ||
		e.Args.Gen != 7 || e.Args.Arg != 4 {
		t.Fatalf("instant event round-trip: %+v", e)
	}
	for _, e := range doc.TraceEvents {
		if e.Pid < 0 || e.Tid < 0 {
			t.Fatalf("negative pid/tid in export: %+v", e)
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(8)
		clk := &simtime.Clock{}
		tr.SetNow(clk.Now)
		tr.SetActor(0, "kernel")
		tr.SetActor(1, "app")
		tr.SetTrack(0, "p0")
		for i := 0; i < 12; i++ { // wraps
			clk.Advance(simtime.Duration(i * 7))
			tr.Emit(EventKind(1+i%int(numEventKinds-1)), i%2, i%3-1, uint64(i), int64(i))
		}
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical runs produced different trace exports")
	}
	var am, bm bytes.Buffer
	reg := func() *Registry {
		r := NewRegistry()
		r.Counter("z").Add(3)
		r.Counter("a").Add(1)
		r.Gauge("depth").Set(-2)
		h := r.Histogram("lat")
		for _, v := range []int64{0, 1, 5, 5, 900} {
			h.Observe(v)
		}
		return r
	}
	if err := reg().Snapshot().WriteJSON(&am); err != nil {
		t.Fatal(err)
	}
	if err := reg().Snapshot().WriteJSON(&bm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am.Bytes(), bm.Bytes()) {
		t.Fatal("metrics snapshots differ between identical runs")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1<<62 - 1, 62}, {1 << 62, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if c.bucket > 0 {
			lo, hi := BucketBounds(c.bucket)
			if c.v < lo || c.v > hi {
				t.Errorf("value %d outside its bucket bounds [%d,%d]", c.v, lo, hi)
			}
		}
	}
	h := &Histogram{}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count %d", h.Count())
	}
	snap := NewRegistry()
	snap.hists["h"] = h
	hs := snap.Snapshot().Histograms["h"]
	if hs.Min != -5 || hs.Max != 1<<62 {
		t.Fatalf("min/max %d/%d", hs.Min, hs.Max)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.N
	}
	if total != hs.Count {
		t.Fatalf("bucket sum %d != count %d", total, hs.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvAlloc, 0, 0, 0, 0)
	tr.SetActor(0, "x")
	if tr.Count() != 0 || tr.Total() != 0 || tr.Events() != nil || tr.Since(0) != nil {
		t.Fatal("nil tracer not inert")
	}
	// A zero-value Tracer (not built via NewTracer) has no ring; it must
	// drop events rather than panic, and naming must lazily allocate.
	zt := &Tracer{}
	zt.Emit(EvAlloc, 0, 0, 0, 0)
	if zt.Count() != 0 || zt.Total() != 0 {
		t.Fatal("zero-value tracer not inert")
	}
	zt.SetActor(1, "a")
	zt.SetTrack(1, "p")
	if zt.ActorName(1) != "a" || zt.TrackName(1) != "p" {
		t.Fatal("zero-value tracer naming broken")
	}
	var o *Observer
	o.Emit(EvAlloc, 0, 0, 0, 0)
	o.Observe("x", 1)
	o.SetNow(nil)
	if o.Now() != 0 {
		t.Fatal("nil observer not inert")
	}
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	if r.Counter("c").Value() != 0 {
		t.Fatal("nil registry not inert")
	}
}

// TestPublishSelfMetrics: after wrapping a small ring, the dropped-event
// count must surface in the metrics registry and its JSON snapshot — the
// only signal that an exported trace is truncated.
func TestPublishSelfMetrics(t *testing.T) {
	o := New(4)
	for i := 0; i < 10; i++ {
		o.Emit(EvAlloc, 1, 1, 0, int64(i))
	}
	o.PublishSelfMetrics()
	s := o.Metrics.Snapshot()
	if got := s.Counters["obs.events_total"]; got != 10 {
		t.Errorf("obs.events_total = %d, want 10", got)
	}
	if got := s.Counters["obs.events_dropped"]; got != 6 {
		t.Errorf("obs.events_dropped = %d, want 6", got)
	}
	if got := s.Gauges["obs.events_held"]; got != 4 {
		t.Errorf("obs.events_held = %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"obs.events_dropped": 6`) {
		t.Errorf("snapshot JSON missing dropped count:\n%s", buf.String())
	}
	// Publishing on an observer with no metrics registry (or nil) is a
	// no-op, matching every other Observer method.
	(&Observer{Tracer: NewTracer(4)}).PublishSelfMetrics()
	var nilObs *Observer
	nilObs.PublishSelfMetrics()
}
